//! End-to-end crash recovery: produce with R3, crash a server, recover
//! from backups, verify every acknowledged record survives exactly once
//! and in per-slot order.

use std::collections::HashMap;
use std::time::Duration;

use kera_broker::cluster::{broker_node, KeraCluster};
use kera_client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera_client::producer::{Producer, ProducerConfig};
use kera_client::MetadataClient;
use kera_common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera_common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};
use kera_recovery::{RecoveryConfig, RecoveryManager};

fn stream_config(streamlets: u32, q: u32, policy: VirtualLogPolicy) -> StreamConfig {
    StreamConfig {
        id: StreamId(1),
        streamlets,
        active_groups: q,
        segments_per_group: 2,
        segment_size: 1 << 14, // small segments: recovery crosses many
        replication: ReplicationConfig { factor: 3, policy, vseg_size: 1 << 14 },
    }
}

/// Produce `n` sequence-tagged records, crash server 0, recover, and
/// validate the full record set from a fresh consumer.
fn run_crash_recovery(streamlets: u32, q: u32, policy: VirtualLogPolicy, n: u64) {
    let mut cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(streamlets, q, policy)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n);
    producer.close().unwrap();

    // Crash server 0 (its broker AND its backup die).
    cluster.crash_server(0);

    // Drive recovery from a dedicated client node.
    let rec_rt = cluster.client(1);
    let manager = RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        RecoveryConfig::default(),
    );
    let report = manager.recover(broker_node(0)).unwrap();
    assert!(report.reassigned_streamlets > 0, "broker 0 led some streamlets");
    assert!(report.vsegs_read > 0);
    assert!(report.records_recovered > 0);

    // A fresh consumer (fresh metadata!) must see every record exactly
    // once, in per-(streamlet, slot) order.
    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();

    let mut seen: Vec<u64> = Vec::new();
    let mut last_per_slot: HashMap<(StreamletId, u32), u64> = HashMap::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (seen.len() as u64) < n && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        let key = (batch.streamlet, batch.slot);
        batch
            .for_each_record(|_, rec| {
                let v = u64::from_le_bytes(rec.value().try_into().unwrap());
                if let Some(&prev) = last_per_slot.get(&key) {
                    assert!(
                        v > prev,
                        "per-slot order violated after recovery: \
                         streamlet={:?} slot={} v={v} prev={prev} ({})",
                        key.0,
                        key.1,
                        if v == prev { "duplicate" } else { "reorder" }
                    );
                }
                last_per_slot.insert(key, v);
                seen.push(v);
            })
            .unwrap();
    }
    assert_eq!(seen.len() as u64, n, "exactly-once recovery");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, n, "no duplicates, no losses");
    assert_eq!(*seen.first().unwrap(), 0);
    assert_eq!(*seen.last().unwrap(), n - 1);

    consumer.close();
    cluster.shutdown();
}

#[test]
fn recovery_shared_vlogs_q1() {
    run_crash_recovery(8, 1, VirtualLogPolicy::SharedPerBroker(2), 4_000);
}

#[test]
fn recovery_per_streamlet_vlogs() {
    run_crash_recovery(4, 1, VirtualLogPolicy::PerStreamlet, 3_000);
}

#[test]
fn recovery_per_subpartition_q4() {
    run_crash_recovery(4, 4, VirtualLogPolicy::PerSubPartition, 3_000);
}

#[test]
fn recovery_of_idle_broker_is_empty() {
    let mut cluster = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    // No stream ever created; crash and recover must be a clean no-op.
    cluster.crash_server(1);
    let rec_rt = cluster.client(0);
    let manager = RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        RecoveryConfig::default(),
    );
    let report = manager.recover(broker_node(1)).unwrap();
    assert_eq!(report.reassigned_streamlets, 0);
    assert_eq!(report.vsegs_read, 0);
    assert_eq!(report.records_recovered, 0);
    cluster.shutdown();
}

#[test]
fn surviving_brokers_keep_serving_during_recovery() {
    let mut cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(4, 1, VirtualLogPolicy::SharedPerBroker(2))).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 512, ..ProducerConfig::default() },
    )
    .unwrap();
    for i in 0..1_000u64 {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    producer.close().unwrap();

    cluster.crash_server(3);
    let rec_rt = cluster.client(1);
    let manager = RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        RecoveryConfig::default(),
    );
    manager.recover(broker_node(3)).unwrap();

    // A new producer with fresh metadata can keep writing to the stream
    // (including the recovered streamlet, now on a survivor).
    let prod2_rt = cluster.client(2);
    let meta2 = MetadataClient::new(prod2_rt.client(), cluster.coordinator());
    let producer2 = Producer::new(
        &meta2,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(1), chunk_size: 512, ..ProducerConfig::default() },
    )
    .unwrap();
    for i in 0..500u64 {
        producer2.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer2.flush().unwrap();
    assert_eq!(producer2.metrics().items(), 500);
    assert_eq!(producer2.failed_requests(), 0);
    producer2.close().unwrap();
    cluster.shutdown();
}
