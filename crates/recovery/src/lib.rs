//! Crash recovery: parallel backup replay and metadata reconstruction
//! (paper §III, §IV-B and the RAMCloud-inspired fast-recovery future
//! work).
//!
//! When a broker crashes, its durably-acknowledged chunks survive on the
//! backups that replicated its virtual logs. Recovery proceeds in four
//! steps, driven by a [`RecoveryManager`]:
//!
//! 1. **Report** the crash to the coordinator, which reassigns the dead
//!    broker's streamlets to survivors and tells them to host the
//!    streamlets;
//! 2. **Enumerate**: every backup lists the replicated virtual segments
//!    it holds for the crashed broker; segments replicated `R−1` times
//!    are deduplicated so each is read exactly once, spread across
//!    backups ("data can be read in parallel from many backups");
//! 3. **Read & order**: virtual segments are streamed back and their
//!    chunks regrouped per (stream, streamlet, slot) in `base_offset`
//!    order — the virtual log preserved per-slot append order, so this
//!    reconstructs each sub-partition exactly;
//! 4. **Replay**: chunks are re-ingested into the new owner brokers as
//!    normal produce requests ("each of these requests is handled as a
//!    normal producer request"), which re-replicates them and rebuilds
//!    the per-slot offsets; the chunk's `(producer, base_offset)` tags
//!    make the replay exactly-once.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use kera_common::ids::{NodeId, ProducerId, StreamId, StreamletId};
use kera_common::{KeraError, Result};
use kera_rpc::RpcClient;
use kera_wire::chunk::ChunkIter;
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    CrashReassignmentResponse, GetMetadataRequest, ProduceRequest, ProduceResponse,
    RecoveryEnumerateRequest, RecoveryEnumerateResponse, RecoveryReadRequest, ReportCrashRequest,
    StreamMetadata,
};

/// Producer id recovery requests are issued under (outside the normal
/// client id space; the per-chunk producer in each chunk header is what
/// brokers route by).
pub const RECOVERY_PRODUCER: ProducerId = ProducerId(u32::MAX);

/// Outcome of one recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Streamlets that moved, per the coordinator.
    pub reassigned_streamlets: usize,
    /// Replicated virtual segments read from backups (after dedup).
    pub vsegs_read: usize,
    /// Distinct chunks replayed.
    pub chunks_replayed: u64,
    /// Records those chunks carried.
    pub records_recovered: u64,
    /// Chunk bytes replayed.
    pub bytes_replayed: u64,
    /// Wall-clock duration of the whole recovery.
    pub duration: Duration,
}

/// Configuration for a recovery run.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    pub call_timeout: Duration,
    /// Max chunk bytes per replay request.
    pub replay_request_bytes: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { call_timeout: Duration::from_secs(10), replay_request_bytes: 1 << 20 }
    }
}

/// Drives recovery of a crashed broker.
pub struct RecoveryManager {
    rpc: RpcClient,
    /// Coordinator replica set; calls go to whichever currently leads
    /// (single-element for an unreplicated coordinator).
    coordinators: Vec<NodeId>,
    /// All backup services in the cluster (the manager asks each what it
    /// holds; dead ones are skipped).
    backups: Vec<NodeId>,
    cfg: RecoveryConfig,
}

/// One recovered chunk with its ordering key.
struct RecoveredChunk {
    stream: StreamId,
    streamlet: StreamletId,
    slot: u32,
    base_offset: u64,
    records: u32,
    bytes: Bytes,
}

impl RecoveryManager {
    pub fn new(
        rpc: RpcClient,
        coordinator: NodeId,
        backups: Vec<NodeId>,
        cfg: RecoveryConfig,
    ) -> Self {
        Self { rpc, coordinators: vec![coordinator], backups, cfg }
    }

    /// Replica-aware constructor for clusters with a replicated
    /// coordinator: crash reports and metadata lookups follow the
    /// current leader across failovers.
    pub fn with_coordinators(
        rpc: RpcClient,
        coordinators: Vec<NodeId>,
        backups: Vec<NodeId>,
        cfg: RecoveryConfig,
    ) -> Self {
        Self { rpc, coordinators, backups, cfg }
    }

    /// Coordinator call through whichever replica currently leads.
    fn call_coordinator(&self, opcode: OpCode, payload: Bytes) -> Result<Bytes> {
        let (resp, _) =
            self.rpc.call_leader(&self.coordinators, None, opcode, payload, self.cfg.call_timeout)?;
        Ok(resp)
    }

    /// Recovers `crashed`: reassign, enumerate, read, replay. Returns a
    /// report of what was recovered.
    pub fn recover(&self, crashed: NodeId) -> Result<RecoveryReport> {
        let started = Instant::now();

        // 1. Reassignment.
        let resp =
            self.call_coordinator(OpCode::ReportCrash, ReportCrashRequest { node: crashed }.encode())?;
        let reassignments = CrashReassignmentResponse::decode(&resp)?;
        let new_owner: HashMap<(StreamId, StreamletId), NodeId> = reassignments
            .reassignments
            .iter()
            .map(|r| ((r.stream, r.streamlet), r.new_broker))
            .collect();

        // 2. Enumerate all backups; pick one source per virtual segment,
        //    rotating across backups for parallel reads.
        let mut source_of: HashMap<(u32, u64), (NodeId, u32)> = HashMap::new();
        for &backup in &self.backups {
            let Ok(payload) = self.rpc.call(
                backup,
                OpCode::RecoveryEnumerate,
                RecoveryEnumerateRequest { crashed_broker: crashed }.encode(),
                self.cfg.call_timeout,
            ) else {
                continue; // backup died with the broker
            };
            let listing = RecoveryEnumerateResponse::decode(&payload)?;
            for seg in listing.segments {
                // Prefer the copy with the most bytes (an in-flight batch
                // may have reached only some backups).
                let key = (seg.vlog.raw(), seg.vseg.raw());
                match source_of.get(&key) {
                    Some((_, len)) if *len >= seg.len => {}
                    _ => {
                        source_of.insert(key, (backup, seg.len));
                    }
                }
            }
        }

        // 3. Read the segments in parallel (one thread per backup) and
        //    collect chunks.
        let mut per_backup: HashMap<NodeId, Vec<(u32, u64)>> = HashMap::new();
        for (&key, &(backup, _)) in &source_of {
            per_backup.entry(backup).or_default().push(key);
        }
        let vsegs_read = source_of.len();
        let mut meta_cache: HashMap<StreamId, StreamMetadata> = HashMap::new();
        let chunks: Vec<RecoveredChunk> = {
            let results: Vec<Result<Vec<Bytes>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = per_backup
                    .iter()
                    .map(|(&backup, keys)| {
                        let rpc = self.rpc.clone();
                        let timeout = self.cfg.call_timeout;
                        scope.spawn(move || -> Result<Vec<Bytes>> {
                            let mut out = Vec::with_capacity(keys.len());
                            for &(vlog, vseg) in keys {
                                let payload = rpc.call(
                                    backup,
                                    OpCode::RecoveryRead,
                                    RecoveryReadRequest {
                                        crashed_broker: crashed,
                                        vlog: kera_common::ids::VirtualLogId(vlog),
                                        vseg: kera_common::ids::VirtualSegmentId(vseg),
                                    }
                                    .encode(),
                                    timeout,
                                )?;
                                out.push(payload);
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("recovery reader panicked")).collect()
            });
            let mut chunks = Vec::new();
            for segments in results {
                for seg_bytes in segments? {
                    for chunk in ChunkIter::new(&seg_bytes) {
                        let chunk = chunk?;
                        chunk.verify()?; // end-to-end integrity at recovery
                        let h = chunk.header();
                        if !h.is_assigned() {
                            return Err(KeraError::Recovery(
                                "backup held an unassigned chunk".into(),
                            ));
                        }
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            meta_cache.entry(h.stream)
                        {
                            let payload = self.call_coordinator(
                                OpCode::GetMetadata,
                                GetMetadataRequest { stream: h.stream }.encode(),
                            )?;
                            slot.insert(StreamMetadata::decode(&payload)?);
                        }
                        let md = &meta_cache[&h.stream];
                        let q = md.config.active_groups.max(1);
                        chunks.push(RecoveredChunk {
                            stream: h.stream,
                            streamlet: h.streamlet,
                            slot: h.group % q,
                            base_offset: h.base_offset,
                            records: h.record_count,
                            bytes: Bytes::copy_from_slice(chunk.bytes()),
                        });
                    }
                }
            }
            chunks
        };

        // 4. Order per (stream, streamlet, slot) by base offset and
        //    replay into the new owners — sequentially per owner (to
        //    preserve per-slot order), in parallel across owners.
        let mut per_owner: HashMap<NodeId, Vec<RecoveredChunk>> = HashMap::new();
        let mut chunks_replayed = 0u64;
        let mut records_recovered = 0u64;
        let mut bytes_replayed = 0u64;
        for c in chunks {
            let owner =
                new_owner.get(&(c.stream, c.streamlet)).copied().ok_or_else(|| {
                    KeraError::Recovery(format!(
                        "no new owner for {}/{}",
                        c.stream, c.streamlet
                    ))
                })?;
            chunks_replayed += 1;
            records_recovered += u64::from(c.records);
            bytes_replayed += c.bytes.len() as u64;
            per_owner.entry(owner).or_default().push(c);
        }
        let replay_bytes = self.cfg.replay_request_bytes;
        let timeout = self.cfg.call_timeout;
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_owner
                .into_iter()
                .map(|(owner, mut chunks)| {
                    let rpc = self.rpc.clone();
                    scope.spawn(move || -> Result<()> {
                        chunks.sort_by_key(|c| {
                            (c.stream, c.streamlet, c.slot, c.base_offset)
                        });
                        let mut i = 0;
                        while i < chunks.len() {
                            let mut body = Vec::new();
                            let mut count = 0u32;
                            while i < chunks.len()
                                && (count == 0 || body.len() + chunks[i].bytes.len() <= replay_bytes)
                            {
                                body.extend_from_slice(&chunks[i].bytes);
                                count += 1;
                                i += 1;
                            }
                            let req = ProduceRequest {
                                producer: RECOVERY_PRODUCER,
                                recovery: true,
                                chunk_count: count,
                                chunks: Bytes::from(body),
                            };
                            let payload =
                                rpc.call(owner, OpCode::RecoveryIngest, req.encode(), timeout)?;
                            let resp = ProduceResponse::decode(&payload)?;
                            if resp.acks.len() as u32 != count {
                                return Err(KeraError::Recovery(format!(
                                    "owner {owner} acked {} of {count} chunks",
                                    resp.acks.len()
                                )));
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("replay thread panicked")).collect()
        });
        for r in results {
            r?;
        }

        Ok(RecoveryReport {
            reassigned_streamlets: new_owner.len(),
            vsegs_read,
            chunks_replayed,
            records_recovered,
            bytes_replayed,
            duration: started.elapsed(),
        })
    }
}

/// Convenience: an `Arc`-wrapped manager for multi-threaded drivers.
pub type SharedRecoveryManager = Arc<RecoveryManager>;
