//! `kera-inspect` — the cluster introspection CLI (DESIGN.md §13).
//!
//! Boots a KerA cluster on loopback TCP and scrapes every node — each
//! coordinator replica, broker and backup — over the wire with
//! [`OpCode::Introspect`], exactly the way an external operator tool
//! would. Subcommands:
//!
//! - `health`  — one line per node: role, leader term, replication and
//!   consumer lag, quota ladder state, in-flight window occupancy.
//!   Exits non-zero unless EVERY node reports.
//! - `metrics` — each node's full registry snapshot as JSON (brokers
//!   merge in the process-wide lock-contention histograms).
//! - `traces`  — drives a short burst of ingest, then prints each
//!   node's tail-sampled slow-span trees.
//! - `watch`   — re-scrapes health every `--interval-ms`, printing
//!   progress/in-flight deltas, `--count` times.
//!
//! Knobs: `--brokers N` (default 3), `--replicas N` (default 3).
//! `KERA_WATCHDOG_MS` arms the per-node stall watchdog in the booted
//! cluster; `KERA_SLOW_TRACES` sizes the per-stage slow-trace store.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use kera_broker::cluster::{backup_node, broker_node, coordinator_node, KeraCluster};
use kera_common::config::{
    ClusterConfig, ReplicationConfig, StreamConfig, TransportChoice, VirtualLogPolicy,
};
use kera_common::ids::{NodeId, ProducerId, StreamId, StreamletId};
use kera_common::Result;
use kera_rpc::RpcClient;
use kera_wire::chunk::ChunkBuilder;
use kera_wire::frames::OpCode;
use kera_wire::messages::{
    introspect_sections, CreateStreamRequest, IntrospectRequest, IntrospectResponse,
    ProduceRequest, StreamMetadata,
};
use kera_wire::record::Record;

const CALL_TIMEOUT: Duration = Duration::from_secs(5);

fn usage() -> ExitCode {
    eprintln!(
        "usage: kera-inspect <health|metrics|traces|watch> \
         [--brokers N] [--replicas N] [--interval-ms M] [--count K]"
    );
    ExitCode::from(2)
}

struct Opts {
    brokers: u32,
    replicas: u32,
    interval_ms: u64,
    count: u32,
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut o = Opts { brokers: 3, replicas: 3, interval_ms: 1000, count: 5 };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = it.next()?;
        match flag.as_str() {
            "--brokers" => o.brokers = val.parse().ok()?,
            "--replicas" => o.replicas = val.parse().ok()?,
            "--interval-ms" => o.interval_ms = val.parse().ok()?,
            "--count" => o.count = val.parse().ok()?,
            _ => return None,
        }
    }
    (o.brokers > 0 && o.replicas > 0).then_some(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let Some(opts) = parse_opts(&args[1..]) else { return usage() };

    let mut cfg = ClusterConfig {
        brokers: opts.brokers,
        worker_threads: 2,
        transport: TransportChoice::Tcp,
        ..ClusterConfig::default()
    };
    cfg.coordinator.replicas = opts.replicas;
    let cluster = match KeraCluster::start(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kera-inspect: failed to boot cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !wait_for_leader(&cluster, Duration::from_secs(10)) {
        eprintln!("kera-inspect: no coordinator leader elected within 10s");
        return ExitCode::FAILURE;
    }
    let client_rt = cluster.client(0);
    let client = &client_rt.client();

    let code = match cmd.as_str() {
        "health" => cmd_health(&cluster, client),
        "metrics" => cmd_sections(&cluster, client, introspect_sections::METRICS),
        "traces" => {
            if let Err(e) = drive_ingest(&cluster, client) {
                eprintln!("kera-inspect: ingest for trace sampling failed: {e}");
                return ExitCode::FAILURE;
            }
            cmd_sections(&cluster, client, introspect_sections::TRACES)
        }
        "watch" => cmd_watch(&cluster, client, opts.interval_ms, opts.count),
        _ => return usage(),
    };
    drop(client_rt);
    cluster.shutdown();
    code
}

/// Every scrapeable node of the cluster, in report order.
fn all_nodes(cluster: &KeraCluster) -> Vec<NodeId> {
    let cfg = cluster.config();
    let mut nodes: Vec<NodeId> =
        (0..cfg.coordinator.replicas).map(coordinator_node).collect();
    nodes.extend((0..cfg.brokers).map(broker_node));
    nodes.extend((0..cfg.brokers).map(backup_node));
    nodes
}

fn wait_for_leader(cluster: &KeraCluster, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cluster.coordinator_leader().is_some() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn scrape(client: &RpcClient, node: NodeId, sections: u32) -> Result<IntrospectResponse> {
    let req = IntrospectRequest { sections };
    let resp = client.call(node, OpCode::Introspect, req.encode(), CALL_TIMEOUT)?;
    IntrospectResponse::decode(&resp)
}

fn health_line(r: &IntrospectResponse) -> String {
    let mut line = format!(
        "node {:>4}  {:<11}",
        r.node,
        r.role_name(),
    );
    match r.role_name() {
        "coordinator" => {
            line.push_str(&format!(
                "  term={} leader={}",
                r.term,
                if r.is_leader { "yes" } else { "no" }
            ));
        }
        "broker" => {
            line.push_str(&format!(
                "  vlogs={} repl_lag={}B consumer_lag={}B quota={} queue={}B/{}B hwm \
                 throttles={} rejects={}",
                r.vlogs,
                r.replication_lag_bytes(),
                r.consumer_lag_bytes,
                if r.quota_enabled { "on" } else { "off" },
                r.quota_queue_bytes,
                r.quota_queue_hwm_bytes,
                r.quota_throttles,
                r.quota_rejections,
            ));
        }
        _ => {
            line.push_str(&format!("  segments={} held={}B", r.segments, r.durable_bytes));
        }
    }
    line.push_str(&format!(
        "  inflight={} progress={} watchdog={}ms",
        r.inflight, r.progress, r.watchdog_ms
    ));
    line
}

fn cmd_health(cluster: &KeraCluster, client: &RpcClient) -> ExitCode {
    let mut failed = 0u32;
    for node in all_nodes(cluster) {
        match scrape(client, node, introspect_sections::HEALTH) {
            Ok(r) => println!("{}", health_line(&r)),
            Err(e) => {
                failed += 1;
                eprintln!("node {:>4}  UNREACHABLE: {e}", node.raw());
            }
        }
    }
    if failed > 0 {
        eprintln!("kera-inspect: {failed} node(s) failed to report");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_sections(cluster: &KeraCluster, client: &RpcClient, sections: u32) -> ExitCode {
    let mut failed = 0u32;
    for node in all_nodes(cluster) {
        match scrape(client, node, sections) {
            Ok(r) => {
                let body = if sections == introspect_sections::METRICS {
                    &r.metrics_json
                } else {
                    &r.traces_json
                };
                println!("=== node {} ({}) ===", r.node, r.role_name());
                println!("{body}");
            }
            Err(e) => {
                failed += 1;
                eprintln!("node {:>4}  UNREACHABLE: {e}", node.raw());
            }
        }
    }
    if failed > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS }
}

fn cmd_watch(
    cluster: &KeraCluster,
    client: &RpcClient,
    interval_ms: u64,
    count: u32,
) -> ExitCode {
    let nodes = all_nodes(cluster);
    let mut last_progress: Vec<u64> = vec![0; nodes.len()];
    let mut failed = 0u32;
    for round in 0..count.max(1) {
        if round > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        println!("--- scrape {} ---", round + 1);
        for (i, &node) in nodes.iter().enumerate() {
            match scrape(client, node, introspect_sections::HEALTH) {
                Ok(r) => {
                    let delta = r.progress.saturating_sub(last_progress[i]);
                    last_progress[i] = r.progress;
                    println!("{}  (+{delta})", health_line(&r));
                }
                Err(e) => {
                    failed += 1;
                    eprintln!("node {:>4}  UNREACHABLE: {e}", node.raw());
                }
            }
        }
    }
    if failed > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS }
}

/// A short burst of real ingest so the slow-trace stores and flight
/// recorders have spans to show: one R-min stream, a few hundred
/// records spread over every streamlet.
fn drive_ingest(cluster: &KeraCluster, client: &RpcClient) -> Result<()> {
    let brokers = cluster.config().brokers;
    let sc = StreamConfig {
        id: StreamId(1),
        streamlets: brokers,
        active_groups: 1,
        segments_per_group: 4,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor: brokers.min(3),
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    };
    let (md_bytes, _leader) = client.call_leader(
        &cluster.coordinators(),
        None,
        OpCode::CreateStream,
        CreateStreamRequest { config: sc }.encode(),
        CALL_TIMEOUT,
    )?;
    let md = StreamMetadata::decode(&md_bytes)?;
    for sl in 0..brokers {
        let Some(broker) = md.broker_of(StreamletId(sl)) else { continue };
        let mut b = ChunkBuilder::new(8192, ProducerId(1), StreamId(1), StreamletId(sl));
        for i in 0..50u32 {
            b.append(&Record::value_only(&[i as u8; 64]));
        }
        let chunk = b.seal();
        let req = ProduceRequest {
            producer: ProducerId(1),
            recovery: false,
            chunk_count: 1,
            chunks: chunk,
        };
        client.call(broker, OpCode::Produce, req.encode(), CALL_TIMEOUT)?;
    }
    Ok(())
}
