//! Monotonic-time helpers and a calibrated busy-wait.
//!
//! The optional network cost model needs sub-microsecond delays that
//! `thread::sleep` cannot provide (its granularity is ~50 µs or worse under
//! load). [`spin_for_ns`] busy-waits for short delays and falls back to
//! sleeping for long ones, which keeps the simulated wire costs accurate
//! without burning a core on multi-millisecond waits.

use std::time::{Duration, Instant};

/// Threshold above which we sleep instead of spinning.
const SPIN_MAX_NS: u64 = 100_000; // 100 µs

/// Blocks the calling thread for approximately `ns` nanoseconds.
///
/// Below [`SPIN_MAX_NS`] this busy-waits on `Instant::now` (accurate to the
/// clock read overhead, tens of nanoseconds); above it, it sleeps for the
/// bulk and spins the remainder.
pub fn spin_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    if ns > SPIN_MAX_NS {
        // Sleep for everything but the final spin window.
        let sleep_ns = ns - SPIN_MAX_NS;
        std::thread::sleep(Duration::from_nanos(sleep_ns));
    }
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// A stopwatch that can be cheaply restarted; used for linger timers.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    #[inline]
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }

    #[inline]
    pub fn restart(&mut self) {
        self.start = Instant::now();
    }

    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    #[inline]
    pub fn expired(&self, limit: Duration) -> bool {
        self.elapsed() >= limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_zero_returns_immediately() {
        let t = Instant::now();
        spin_for_ns(0);
        assert!(t.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn spin_short_is_at_least_requested() {
        let t = Instant::now();
        spin_for_ns(10_000); // 10 µs
        assert!(t.elapsed() >= Duration::from_nanos(10_000));
        assert!(t.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn spin_long_uses_sleep_and_is_at_least_requested() {
        let t = Instant::now();
        spin_for_ns(2_000_000); // 2 ms
        assert!(t.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn stopwatch_expiry() {
        let mut w = Stopwatch::new();
        assert!(!w.expired(Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(w.expired(Duration::from_millis(1)));
        w.restart();
        assert!(!w.expired(Duration::from_millis(1)));
    }
}
