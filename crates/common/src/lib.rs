//! Common substrate for the KerA virtual-log reproduction.
//!
//! This crate holds everything the rest of the workspace agrees on but that
//! carries no streaming logic of its own:
//!
//! - [`ids`] — strongly-typed identifiers for streams, streamlets, groups,
//!   segments, virtual logs, nodes and clients;
//! - [`error`] — the workspace-wide error type;
//! - [`checksum`] — a software CRC32C (Castagnoli) used by every on-wire and
//!   in-memory structure that carries integrity information;
//! - [`config`] — cluster, stream and replication configuration mirroring
//!   the knobs the paper sweeps in its evaluation;
//! - [`metrics`] — low-overhead counters, throughput meters and latency
//!   histograms used by brokers, clients and the benchmark harness;
//! - [`rng`] — a tiny deterministic SplitMix64 generator for hot paths that
//!   must not pull in a full RNG;
//! - [`timing`] — monotonic-time helpers and calibrated busy-wait used by the
//!   optional network cost model.

pub mod checksum;
pub mod config;
pub mod copymode;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod rng;
pub mod timing;

pub use error::{KeraError, Result};
