//! Strongly-typed identifiers used across the workspace.
//!
//! Every entity of the paper's data model gets its own newtype so the type
//! system prevents, e.g., a streamlet id being used where a group id is
//! expected. All ids are plain integers with a stable wire representation.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $repr:ty) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Builds the id from its raw integer value.
            #[inline]
            pub const fn from_raw(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $repr {
            #[inline]
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

define_id!(
    /// A data stream (a *topic* in Kafka terminology).
    StreamId,
    u32
);
define_id!(
    /// A logical partition of a stream (a *partition* in Kafka; KerA calls
    /// these *streamlets*). Streamlet ids are scoped to their stream and
    /// numbered `0..M`.
    StreamletId,
    u32
);
define_id!(
    /// A fixed-size sub-partition of a streamlet: a *group of segments*.
    /// Group ids are scoped to their streamlet and grow without bound as
    /// data arrives.
    GroupId,
    u32
);
define_id!(
    /// A physical in-memory segment. Segment ids are scoped to their group.
    SegmentId,
    u32
);
define_id!(
    /// A shared replicated virtual log. Scoped to its owning broker.
    VirtualLogId,
    u32
);
define_id!(
    /// A virtual segment within a virtual log; monotonically increasing.
    VirtualSegmentId,
    u64
);
define_id!(
    /// A node of the simulated cluster: coordinator, broker, backup or
    /// client. Node ids are unique across the whole cluster and double as
    /// transport addresses.
    NodeId,
    u32
);
define_id!(
    /// A producer client.
    ProducerId,
    u32
);
define_id!(
    /// A consumer client.
    ConsumerId,
    u32
);

/// A fully-qualified streamlet: `(stream, streamlet)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StreamletRef {
    pub stream: StreamId,
    pub streamlet: StreamletId,
}

impl StreamletRef {
    #[inline]
    pub const fn new(stream: StreamId, streamlet: StreamletId) -> Self {
        Self { stream, streamlet }
    }
}

impl fmt::Display for StreamletRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}/p{}", self.stream.0, self.streamlet.0)
    }
}

/// A fully-qualified group: `(stream, streamlet, group)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GroupRef {
    pub stream: StreamId,
    pub streamlet: StreamletId,
    pub group: GroupId,
}

impl GroupRef {
    #[inline]
    pub const fn new(stream: StreamId, streamlet: StreamletId, group: GroupId) -> Self {
        Self { stream, streamlet, group }
    }

    #[inline]
    pub const fn streamlet_ref(self) -> StreamletRef {
        StreamletRef::new(self.stream, self.streamlet)
    }
}

impl fmt::Display for GroupRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}/p{}/g{}", self.stream.0, self.streamlet.0, self.group.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_raw() {
        let s = StreamId::from_raw(42);
        assert_eq!(s.raw(), 42);
        assert_eq!(u32::from(s), 42);
        assert_eq!(StreamId::from(42u32), s);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(StreamId(7).to_string(), "StreamId(7)");
        assert_eq!(
            GroupRef::new(StreamId(1), StreamletId(2), GroupId(3)).to_string(),
            "s1/p2/g3"
        );
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn group_ref_projects_streamlet_ref() {
        let g = GroupRef::new(StreamId(9), StreamletId(4), GroupId(0));
        assert_eq!(g.streamlet_ref(), StreamletRef::new(StreamId(9), StreamletId(4)));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(StreamId::default().raw(), 0);
        assert_eq!(VirtualSegmentId::default().raw(), 0);
    }
}
