//! Low-overhead metrics: counters, windowed throughput meters and a
//! log-bucketed latency histogram.
//!
//! Brokers, clients and the harness all report through these types. They are
//! deliberately allocation-free on the hot path and safe to share across
//! threads (`&self` everywhere, relaxed atomics — metrics never synchronize
//! data).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Measures sustained throughput over an interval, the way the paper does:
/// start the clock once the workload is warm, read the counter at the end.
///
/// Lock-free: the window start is stored as a nanosecond offset from a
/// per-meter `Instant` epoch captured at construction, so `record()` and
/// `rates()` never take a lock.
#[derive(Debug)]
pub struct ThroughputMeter {
    items: Counter,
    bytes: Counter,
    /// Construction time; window starts are offsets from it.
    epoch: Instant,
    /// Nanoseconds from `epoch` to the window start, plus one so that 0
    /// can mean "window never started".
    started_ns: AtomicU64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    pub fn new() -> Self {
        Self {
            items: Counter::new(),
            bytes: Counter::new(),
            epoch: Instant::now(),
            started_ns: AtomicU64::new(0),
        }
    }

    /// Marks the beginning of the measurement window and zeroes the
    /// counters (discarding warm-up traffic).
    pub fn start_window(&self) {
        self.items.reset();
        self.bytes.reset();
        let offset = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX - 1)) as u64;
        self.started_ns.store(offset + 1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record(&self, items: u64, bytes: u64) {
        self.items.add(items);
        self.bytes.add(bytes);
    }

    pub fn items(&self) -> u64 {
        self.items.get()
    }

    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Snapshot of (items/s, bytes/s) since `start_window`; `None` if the
    /// window was never started or no time has elapsed.
    pub fn rates(&self) -> Option<(f64, f64)> {
        let started = self.started_ns.load(Ordering::Relaxed);
        if started == 0 {
            return None;
        }
        let elapsed_ns = self.epoch.elapsed().as_nanos() as f64 - (started - 1) as f64;
        let secs = elapsed_ns / 1e9;
        if secs <= 0.0 {
            return None;
        }
        Some((self.items.get() as f64 / secs, self.bytes.get() as f64 / secs))
    }
}

/// Number of buckets in [`LatencyHistogram`]: 64 power-of-two buckets of
/// nanoseconds cover 1 ns .. ~584 years.
const HIST_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram.
///
/// Bucket `i` counts samples whose nanosecond value has its highest set bit
/// at position `i`. Percentile queries return the upper bound of the bucket,
/// giving ≤ 2x relative error — plenty for the latency *trends* the paper
/// discusses.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Upper bound (in ns) of the bucket containing quantile `q` (0..=1).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max_ns()
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p99={:.1}us max={:.1}us",
            self.count(),
            self.mean_ns() / 1e3,
            self.quantile_ns(0.50) as f64 / 1e3,
            self.quantile_ns(0.99) as f64 / 1e3,
            self.max_ns() as f64 / 1e3,
        )
    }

    /// Folds another histogram's samples into this one (cluster-wide
    /// aggregation of per-node histograms).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a snapshot's samples into this histogram.
    pub fn merge_snapshot(&self, s: &HistogramSnapshot) {
        for (i, &b) in s.buckets.iter().enumerate() {
            if b != 0 {
                self.buckets[i].fetch_add(b, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(s.count, Ordering::Relaxed);
        self.sum_ns.fetch_add(s.sum_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(s.max_ns, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (fields are read with
    /// relaxed loads; concurrent recording may skew count vs. buckets by
    /// in-flight samples, same as every other reader of this type).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Samples recorded since `prev` was taken (windowed view).
    pub fn delta(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        self.snapshot().delta_since(prev)
    }
}

/// Plain-data copy of a [`LatencyHistogram`], for aggregation, windowing
/// and export without holding the live atomics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub const fn empty() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Sums another snapshot into this one. Associative and commutative:
    /// every field is a sum except `max_ns`, which is a max.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// What was recorded after `prev` (saturating per field; `max_ns`
    /// keeps the current max — log-bucketed histograms cannot recover a
    /// windowed max, only an upper bound).
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(prev.buckets[i])
            }),
            count: self.count.saturating_sub(prev.count),
            sum_ns: self.sum_ns.saturating_sub(prev.sum_ns),
            max_ns: self.max_ns,
        }
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (in ns) of the bucket containing quantile `q` (0..=1);
    /// same semantics as [`LatencyHistogram::quantile_ns`].
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn throughput_meter_window() {
        let m = ThroughputMeter::new();
        assert!(m.rates().is_none());
        m.record(100, 1000); // pre-window traffic is discarded
        m.start_window();
        m.record(50, 500);
        std::thread::sleep(Duration::from_millis(20));
        let (items_s, bytes_s) = m.rates().unwrap();
        assert!(items_s > 0.0 && items_s < 50.0 / 0.015);
        assert!(bytes_s > 0.0);
        assert_eq!(m.items(), 50);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        assert!((256..=511).contains(&p50), "p50 bucket got {p50}");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 100_000);
        assert_eq!(h.max_ns(), 100_000);
        assert!((h.mean_ns() - 20_300.0).abs() < 1.0);
    }

    #[test]
    fn histogram_zero_and_extreme_values() {
        let h = LatencyHistogram::new();
        h.record_ns(0); // clamped to bucket 0
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn histogram_summary_contains_fields() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        let s = h.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("p99"));
    }

    #[test]
    fn throughput_meter_restart_resets_window() {
        let m = ThroughputMeter::new();
        m.start_window();
        m.record(10, 100);
        std::thread::sleep(Duration::from_millis(5));
        m.start_window(); // restart discards the first window's traffic
        assert_eq!(m.items(), 0);
        m.record(7, 70);
        std::thread::sleep(Duration::from_millis(5));
        let (items_s, _) = m.rates().unwrap();
        assert!(items_s > 0.0);
        assert_eq!(m.items(), 7);
    }

    #[test]
    fn throughput_meter_record_is_lock_free_under_contention() {
        let m = Arc::new(ThroughputMeter::new());
        m.start_window();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        m.record(1, 8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.items(), 20_000);
        assert_eq!(m.bytes(), 160_000);
        assert!(m.rates().is_some());
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(100);
        a.record_ns(200);
        b.record_ns(400_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 400_000);
        assert!((a.mean_ns() - (100.0 + 200.0 + 400_000.0) / 3.0).abs() < 1.0);
        // b is untouched.
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let samples: [&[u64]; 3] = [&[10, 20, 30], &[1_000, 2_000], &[u64::MAX, 5]];
        let snaps: Vec<HistogramSnapshot> = samples
            .iter()
            .map(|s| {
                let h = LatencyHistogram::new();
                for &ns in *s {
                    h.record_ns(ns);
                }
                h.snapshot()
            })
            .collect();

        // (a ⊕ b) ⊕ c
        let mut left = snaps[0].clone();
        left.merge(&snaps[1]);
        left.merge(&snaps[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = snaps[1].clone();
        bc.merge(&snaps[2]);
        let mut right = snaps[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // c ⊕ b ⊕ a
        let mut rev = snaps[2].clone();
        rev.merge(&snaps[1]);
        rev.merge(&snaps[0]);
        assert_eq!(left, rev);

        assert_eq!(left.count, 7);
        assert_eq!(left.max_ns, u64::MAX);
    }

    #[test]
    fn snapshot_quantiles_match_live_histogram() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile_ns(q), h.quantile_ns(q), "q={q}");
        }
        assert_eq!(s.mean_ns(), h.mean_ns());
        // Quantile bounds: every quantile is >= the smallest sample's
        // bucket lower bound and within 2x of the largest sample.
        assert!(s.quantile_ns(0.0) >= 64);
        assert!(s.quantile_ns(1.0) >= 100_000 && s.quantile_ns(1.0) < 200_000);
    }

    #[test]
    fn snapshot_delta_windows_new_samples() {
        let h = LatencyHistogram::new();
        h.record_ns(100);
        h.record_ns(5_000);
        let before = h.snapshot();
        h.record_ns(100);
        h.record_ns(1_000_000);
        let d = h.delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 100 + 1_000_000);
        // The delta's quantiles reflect only the window's samples.
        assert!(d.quantile_ns(1.0) >= 1_000_000);
        let lo = d.quantile_ns(0.0);
        assert!((64..=127).contains(&lo), "low quantile got {lo}");
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let h = LatencyHistogram::new();
        h.record_ns(123);
        let s = h.snapshot();
        let mut merged = s.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, s);
        assert_eq!(HistogramSnapshot::empty().quantile_ns(0.5), 0);
    }
}
