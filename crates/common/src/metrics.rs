//! Low-overhead metrics: counters, windowed throughput meters and a
//! log-bucketed latency histogram.
//!
//! Brokers, clients and the harness all report through these types. They are
//! deliberately allocation-free on the hot path and safe to share across
//! threads (`&self` everywhere, relaxed atomics — metrics never synchronize
//! data).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Measures sustained throughput over an interval, the way the paper does:
/// start the clock once the workload is warm, read the counter at the end.
#[derive(Debug)]
pub struct ThroughputMeter {
    items: Counter,
    bytes: Counter,
    started: parking_lot::Mutex<Option<Instant>>,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    pub fn new() -> Self {
        Self {
            items: Counter::new(),
            bytes: Counter::new(),
            started: parking_lot::Mutex::new(None),
        }
    }

    /// Marks the beginning of the measurement window and zeroes the
    /// counters (discarding warm-up traffic).
    pub fn start_window(&self) {
        self.items.reset();
        self.bytes.reset();
        *self.started.lock() = Some(Instant::now());
    }

    #[inline]
    pub fn record(&self, items: u64, bytes: u64) {
        self.items.add(items);
        self.bytes.add(bytes);
    }

    pub fn items(&self) -> u64 {
        self.items.get()
    }

    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Snapshot of (items/s, bytes/s) since `start_window`; `None` if the
    /// window was never started or no time has elapsed.
    pub fn rates(&self) -> Option<(f64, f64)> {
        let started = (*self.started.lock())?;
        let secs = started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some((self.items.get() as f64 / secs, self.bytes.get() as f64 / secs))
    }
}

/// Number of buckets in [`LatencyHistogram`]: 64 power-of-two buckets of
/// nanoseconds cover 1 ns .. ~584 years.
const HIST_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram.
///
/// Bucket `i` counts samples whose nanosecond value has its highest set bit
/// at position `i`. Percentile queries return the upper bound of the bucket,
/// giving ≤ 2x relative error — plenty for the latency *trends* the paper
/// discusses.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Upper bound (in ns) of the bucket containing quantile `q` (0..=1).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max_ns()
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p99={:.1}us max={:.1}us",
            self.count(),
            self.mean_ns() / 1e3,
            self.quantile_ns(0.50) as f64 / 1e3,
            self.quantile_ns(0.99) as f64 / 1e3,
            self.max_ns() as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn throughput_meter_window() {
        let m = ThroughputMeter::new();
        assert!(m.rates().is_none());
        m.record(100, 1000); // pre-window traffic is discarded
        m.start_window();
        m.record(50, 500);
        std::thread::sleep(Duration::from_millis(20));
        let (items_s, bytes_s) = m.rates().unwrap();
        assert!(items_s > 0.0 && items_s < 50.0 / 0.015);
        assert!(bytes_s > 0.0);
        assert_eq!(m.items(), 50);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        assert!((256..=511).contains(&p50), "p50 bucket got {p50}");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 100_000);
        assert_eq!(h.max_ns(), 100_000);
        assert!((h.mean_ns() - 20_300.0).abs() < 1.0);
    }

    #[test]
    fn histogram_zero_and_extreme_values() {
        let h = LatencyHistogram::new();
        h.record_ns(0); // clamped to bucket 0
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn histogram_summary_contains_fields() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        let s = h.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("p99"));
    }
}
