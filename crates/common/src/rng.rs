//! A tiny deterministic generator (SplitMix64) for hot paths.
//!
//! Backup selection, workload generation and partitioner jitter all need
//! cheap pseudo-randomness that is reproducible given a seed; SplitMix64 is
//! a single multiply-xorshift pipeline with excellent statistical quality
//! for these purposes and no dependencies.

/// SplitMix64 state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds from the current time — convenient for non-reproducible use.
    pub fn from_entropy() -> Self {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        // Mix in the thread id so concurrently-seeded generators diverge.
        let tid = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish()
        };
        Self::new(now ^ tid.rotate_left(32))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound` (Lemire's multiply-shift reduction; the
    /// modulo bias is negligible for the bounds used here).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let v = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&v[..rem.len()]);
        }
    }

    /// Chooses `k` distinct indices out of `0..n` (partial Fisher–Yates);
    /// used for picking distinct backups per virtual segment.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct of {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_below((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 0 (Vigna's splitmix64.c).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(99);
        let seen: HashSet<u64> = (0..1000).map(|_| r.next_below(8)).collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn choose_distinct_is_distinct_and_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..100 {
            let picks = r.choose_distinct(10, 4);
            assert_eq!(picks.len(), 4);
            let set: HashSet<_> = picks.iter().copied().collect();
            assert_eq!(set.len(), 4);
            assert!(picks.iter().all(|&p| p < 10));
        }
    }

    #[test]
    fn choose_distinct_full_permutation() {
        let mut r = SplitMix64::new(3);
        let picks = r.choose_distinct(5, 5);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn choose_distinct_rejects_oversized_k() {
        SplitMix64::new(0).choose_distinct(3, 4);
    }
}
