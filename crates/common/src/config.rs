//! Configuration for clusters, streams and replication.
//!
//! The knobs here are exactly the ones the paper's evaluation sweeps
//! (§V-A): chunk size, request size, linger timeout, number of streamlets,
//! active groups per streamlet (`Q`), replication factor (`R`) and the
//! number of virtual logs per broker (the *replication capacity*).

use crate::error::{KeraError, Result};
use crate::ids::StreamId;

/// Default chunk capacity (the paper uses 1 KB–64 KB; 16 KB is its example
/// default in §IV-A).
pub const DEFAULT_CHUNK_SIZE: usize = 16 * 1024;
/// Default physical segment capacity (8 MB in the paper; tests shrink it).
pub const DEFAULT_SEGMENT_SIZE: usize = 8 * 1024 * 1024;
/// Default number of segments logically assembled into one group.
pub const DEFAULT_SEGMENTS_PER_GROUP: u32 = 16;
/// Default virtual segment capacity (same as a physical segment so a full
/// virtual segment replicates into one backup segment).
pub const DEFAULT_VSEG_SIZE: usize = DEFAULT_SEGMENT_SIZE;
/// Default producer linger (the paper fixes `linger.ms = 1`).
pub const DEFAULT_LINGER_MS: u64 = 1;

/// How streamlets are associated with virtual logs on a broker.
///
/// This is the *replication capacity* dial of §III: fewer shared logs mean
/// fewer, larger replication RPCs (and fewer backup buffers); more logs mean
/// more replication parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtualLogPolicy {
    /// A fixed pool of `n` virtual logs per broker shared by *all* streams;
    /// streamlets are assigned round-robin (hash) onto the pool. This is the
    /// headline configuration of Figs. 8, 10, 12–16.
    SharedPerBroker(u32),
    /// One virtual log per streamlet hosted on the broker — the closest
    /// analogue of Kafka's one-replicated-log-per-partition (Fig. 9).
    PerStreamlet,
    /// One virtual log per *active sub-partition* (streamlet × active
    /// group) — the throughput-optimized configuration of Figs. 11, 17–21.
    PerSubPartition,
}

/// Replication configuration for a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Total copies of the data, including the broker's active replica.
    /// `1` disables replication (the broker copy is the only one).
    pub factor: u32,
    /// How virtual logs are allotted on each broker.
    pub policy: VirtualLogPolicy,
    /// Virtual segment capacity in bytes.
    pub vseg_size: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            factor: 3,
            policy: VirtualLogPolicy::SharedPerBroker(4),
            vseg_size: DEFAULT_VSEG_SIZE,
        }
    }
}

impl ReplicationConfig {
    /// Number of backup copies (excluding the broker's own active replica).
    #[inline]
    pub fn backup_copies(&self) -> u32 {
        self.factor.saturating_sub(1)
    }

    pub fn validate(&self) -> Result<()> {
        if self.factor == 0 {
            return Err(KeraError::InvalidConfig("replication factor must be >= 1".into()));
        }
        if self.vseg_size == 0 {
            return Err(KeraError::InvalidConfig("virtual segment size must be > 0".into()));
        }
        if let VirtualLogPolicy::SharedPerBroker(0) = self.policy {
            return Err(KeraError::InvalidConfig("shared virtual log pool must be >= 1".into()));
        }
        Ok(())
    }
}

/// Static description of a stream, fixed at creation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    pub id: StreamId,
    /// `M`: number of streamlets (logical partitions).
    pub streamlets: u32,
    /// `Q`: active groups (physical sub-partitions) per streamlet that
    /// accept parallel appends.
    pub active_groups: u32,
    /// Segments per group before the group is closed.
    pub segments_per_group: u32,
    /// Physical segment capacity in bytes.
    pub segment_size: usize,
    pub replication: ReplicationConfig,
}

impl StreamConfig {
    /// A stream shaped like a default Kafka topic partition: one streamlet
    /// per partition, one active group (no parallel appends within a
    /// partition), as used in Figs. 8 and 10.
    pub fn kafka_like(id: StreamId, partitions: u32) -> Self {
        Self {
            id,
            streamlets: partitions,
            active_groups: 1,
            segments_per_group: DEFAULT_SEGMENTS_PER_GROUP,
            segment_size: DEFAULT_SEGMENT_SIZE,
            replication: ReplicationConfig::default(),
        }
    }

    pub fn validate(&self) -> Result<()> {
        if self.streamlets == 0 {
            return Err(KeraError::InvalidConfig("a stream needs at least one streamlet".into()));
        }
        if self.active_groups == 0 {
            return Err(KeraError::InvalidConfig("Q (active groups) must be >= 1".into()));
        }
        if self.segments_per_group == 0 {
            return Err(KeraError::InvalidConfig("segments per group must be >= 1".into()));
        }
        if self.segment_size < 64 {
            return Err(KeraError::InvalidConfig("segment size unreasonably small".into()));
        }
        self.replication.validate()
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            id: StreamId(0),
            streamlets: 1,
            active_groups: 1,
            segments_per_group: DEFAULT_SEGMENTS_PER_GROUP,
            segment_size: DEFAULT_SEGMENT_SIZE,
            replication: ReplicationConfig::default(),
        }
    }
}

/// Optional network cost model for the in-memory transport.
///
/// With everything zero (the default) messages are delivered as fast as the
/// channel allows and all costs are the real CPU costs of the RPC stack.
/// Non-zero values let experiments approximate a physical cluster: a fixed
/// per-message wire latency plus a per-link bandwidth cap.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetworkModel {
    /// One-way latency added to each message, in nanoseconds.
    pub latency_ns: u64,
    /// Per-link bandwidth cap in bytes/second (`0` = unlimited).
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkModel {
    /// Time the wire occupies for a message of `bytes`, in nanoseconds
    /// (serialization delay only; latency is added separately).
    #[inline]
    pub fn serialize_ns(&self, bytes: usize) -> u64 {
        if self.bandwidth_bytes_per_sec == 0 {
            0
        } else {
            (bytes as u128 * 1_000_000_000u128 / self.bandwidth_bytes_per_sec as u128) as u64
        }
    }

    /// True when the model adds no cost and can be bypassed entirely.
    #[inline]
    pub fn is_free(&self) -> bool {
        self.latency_ns == 0 && self.bandwidth_bytes_per_sec == 0
    }
}

/// Retry discipline for synchronous RPCs (`RpcClient::call` and the
/// replication fan-out): bounded attempts with exponential backoff and
/// deterministic jitter, all under one overall per-call deadline.
///
/// The overall deadline is the `timeout` the caller passes to `call`;
/// this policy only shapes *how* that budget is spent. A transient
/// drop/timeout consumes one attempt and one backoff; non-retriable
/// errors (protocol, unknown stream, ...) surface immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Cap on the time spent waiting for any single attempt's response;
    /// the effective per-attempt timeout is the smaller of this and the
    /// remaining overall budget.
    pub attempt_timeout: std::time::Duration,
    /// Backoff before the second attempt; doubles per attempt.
    pub initial_backoff: std::time::Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub max_backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            attempt_timeout: std::time::Duration::from_secs(1),
            initial_backoff: std::time::Duration::from_millis(5),
            max_backoff: std::time::Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that restores the old single-shot behaviour.
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// The pre-jitter backoff before attempt `attempt` (0-based; attempt
    /// 0 has no backoff).
    pub fn backoff_for(&self, attempt: u32) -> std::time::Duration {
        if attempt == 0 {
            return std::time::Duration::ZERO;
        }
        let exp = self.initial_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        exp.min(self.max_backoff)
    }

    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(KeraError::InvalidConfig("retry policy needs at least one attempt".into()));
        }
        if self.attempt_timeout.is_zero() {
            return Err(KeraError::InvalidConfig("attempt timeout must be > 0".into()));
        }
        Ok(())
    }
}

/// Fault-injection rates for the chaos transport wrapper (`kera-rpc`'s
/// `FaultInjector`). All rates are independent per-message
/// probabilities in `[0, 1]`; everything is driven by a deterministic
/// RNG derived from `seed`, so a failing run reproduces exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Seed for the per-node decision RNGs.
    pub seed: u64,
    /// Probability a message is silently dropped (black-holed).
    pub drop_rate: f64,
    /// Probability a message is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a message is delayed by up to `max_delay`.
    pub delay_rate: f64,
    /// Upper bound on injected delay.
    pub max_delay: std::time::Duration,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay: std::time::Duration::from_millis(2),
        }
    }
}

impl FaultProfile {
    pub fn validate(&self) -> Result<()> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("delay_rate", self.delay_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(KeraError::InvalidConfig(format!(
                    "{name} must be within [0, 1], got {rate}"
                )));
            }
        }
        Ok(())
    }
}

/// Multi-tenant admission control: per-client token-bucket quotas on the
/// produce and fetch paths, a broker-wide admission-queue byte cap (the
/// broker's memory bound), and the degradation ladder a misbehaving
/// tenant climbs: *throttle* (structured `Throttled { retry_after,
/// window_hint }` responses) → *reject* (`Rejected`, no hint — stop
/// sending) → *evict* (the session is refused outright for
/// `evict_cooldown` and its accounting is dropped).
///
/// `enabled: false` (the default) bypasses the gate entirely — one
/// relaxed atomic load on the produce path — so existing figures
/// reproduce byte-for-byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Master switch; `false` preserves pre-quota behaviour exactly.
    pub enabled: bool,
    /// Per-tenant produce token refill rate in bytes/second.
    pub produce_bytes_per_sec: u64,
    /// Token-bucket capacity: the largest burst a tenant may land at
    /// once. Requests larger than this can never be admitted and ride
    /// the ladder to eviction.
    pub burst_bytes: u64,
    /// Per-tenant fetch-side refill rate in bytes/second (`0` = fetch
    /// unmetered). Fetch uses a debt model: the response is served,
    /// then charged; a tenant in debt is throttled until it refills.
    pub fetch_bytes_per_sec: u64,
    /// Per-tenant cap on bytes admitted but not yet acknowledged.
    pub max_inflight_bytes: u64,
    /// Broker-wide cap on admitted-but-unacknowledged bytes — the RSS
    /// proxy. Exceeding it rejects (not throttles): memory pressure
    /// means "back off hard", not "retry in 10 ms".
    pub admission_queue_bytes: u64,
    /// Consecutive throttles before a tenant escalates to `Rejected`.
    pub reject_after_throttles: u32,
    /// Rejections before the tenant's session is evicted.
    pub evict_after_rejections: u32,
    /// How long an evicted session stays refused before it may start
    /// fresh.
    pub evict_cooldown: std::time::Duration,
    /// Idle age after which a tenant's session state is swept (zombie
    /// eviction): its accounting — including any in-flight bytes a dead
    /// client will never release — is dropped.
    pub zombie_idle: std::time::Duration,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            produce_bytes_per_sec: 8 * 1024 * 1024,
            burst_bytes: 1024 * 1024,
            fetch_bytes_per_sec: 0,
            max_inflight_bytes: 4 * 1024 * 1024,
            admission_queue_bytes: 64 * 1024 * 1024,
            reject_after_throttles: 8,
            evict_after_rejections: 16,
            evict_cooldown: std::time::Duration::from_secs(2),
            zombie_idle: std::time::Duration::from_secs(30),
        }
    }
}

impl QuotaConfig {
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(()); // disabled configs are never consulted
        }
        if self.produce_bytes_per_sec == 0 {
            return Err(KeraError::InvalidConfig("quota produce rate must be > 0".into()));
        }
        if self.burst_bytes == 0 {
            return Err(KeraError::InvalidConfig("quota burst must be > 0".into()));
        }
        if self.max_inflight_bytes == 0 {
            return Err(KeraError::InvalidConfig("quota in-flight cap must be > 0".into()));
        }
        if self.admission_queue_bytes < self.max_inflight_bytes {
            return Err(KeraError::InvalidConfig(
                "admission queue cap must be >= the per-tenant in-flight cap".into(),
            ));
        }
        if self.reject_after_throttles == 0 || self.evict_after_rejections == 0 {
            return Err(KeraError::InvalidConfig(
                "degradation ladder thresholds must be >= 1".into(),
            ));
        }
        if self.evict_cooldown.is_zero() || self.zombie_idle.is_zero() {
            return Err(KeraError::InvalidConfig("eviction windows must be > 0".into()));
        }
        Ok(())
    }
}

/// Replicated-coordinator configuration: how many replicas hold the
/// metadata log and the timers driving failure detection and election.
///
/// With `replicas == 1` (the default) the sole coordinator starts as the
/// leader of term 1 immediately and no election traffic is generated —
/// the pre-replication behaviour. With more replicas, the leader
/// heartbeats every `heartbeat_interval` (piggybacked on metadata-log
/// appends), and a follower that hears nothing for a randomized window
/// in `[election_timeout_min, election_timeout_max]` bumps its term and
/// solicits quorum votes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Number of coordinator replicas (`1` = single node, no elections).
    pub replicas: u32,
    /// Leader → follower heartbeat/append cadence.
    pub heartbeat_interval: std::time::Duration,
    /// Lower bound of the randomized election timeout. Must comfortably
    /// exceed `heartbeat_interval` so healthy leaders are never deposed.
    pub election_timeout_min: std::time::Duration,
    /// Upper bound of the randomized election timeout; the spread breaks
    /// split-vote ties.
    pub election_timeout_max: std::time::Duration,
    /// Metadata-log length that triggers a snapshot + log truncation.
    pub snapshot_threshold: usize,
    /// Seed for each replica's election-jitter RNG (mixed with its node
    /// id, so replicas draw distinct but reproducible timeouts).
    pub seed: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            heartbeat_interval: std::time::Duration::from_millis(25),
            election_timeout_min: std::time::Duration::from_millis(150),
            election_timeout_max: std::time::Duration::from_millis(300),
            snapshot_threshold: 256,
            seed: 0xC0D1_0E1E,
        }
    }
}

impl CoordinatorConfig {
    /// Quorum size for the configured replica count (majority).
    #[inline]
    pub fn quorum(&self) -> u32 {
        self.replicas / 2 + 1
    }

    pub fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(KeraError::InvalidConfig("coordinator needs at least one replica".into()));
        }
        if self.heartbeat_interval.is_zero() {
            return Err(KeraError::InvalidConfig("heartbeat interval must be > 0".into()));
        }
        if self.election_timeout_min < self.heartbeat_interval * 2 {
            return Err(KeraError::InvalidConfig(
                "election timeout min must be at least 2x the heartbeat interval".into(),
            ));
        }
        if self.election_timeout_max < self.election_timeout_min {
            return Err(KeraError::InvalidConfig(
                "election timeout max must be >= election timeout min".into(),
            ));
        }
        if self.snapshot_threshold == 0 {
            return Err(KeraError::InvalidConfig("snapshot threshold must be > 0".into()));
        }
        Ok(())
    }
}

/// Default cap on a single RPC frame accepted by stream transports.
/// Large enough for a max-size produce batch, small enough that a
/// corrupt or hostile length prefix cannot trigger a giant allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Which fabric the cluster's nodes talk over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportChoice {
    /// In-process channels: fastest, supports fault injection and the
    /// network cost model.
    #[default]
    InMemory,
    /// Loopback TCP sockets (the paper's client transport).
    Tcp,
}

/// Cluster-wide configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of broker nodes (each co-hosting a backup service, as in the
    /// paper's Grid5000 deployment).
    pub brokers: u32,
    /// Worker threads per broker (the paper uses 16, one per core).
    pub worker_threads: usize,
    /// Fabric choice (in-memory channels or loopback TCP).
    pub transport: TransportChoice,
    /// Network cost model (in-memory transport only).
    pub network: NetworkModel,
    /// Fixed CPU/IO-setup cost per *storage write operation* on the
    /// replication path, in nanoseconds (busy-wait). Models what the
    /// in-process substrate lacks relative to a real node: the per-write
    /// syscall/filesystem/index cost of persisting one batch to one log
    /// file. KerA backups pay it once per consolidated replication write;
    /// Kafka followers pay it once per *partition* whose data a fetch
    /// delivered (each partition is its own log file) — the paper's
    /// "small I/Os vs large I/Os on backups". `0` disables the model.
    pub io_cost_ns: u64,
    /// Directory for asynchronous secondary-storage flushes; `None`
    /// disables disk entirely (pure in-memory experiments, as the produce
    /// path never depends on disk anyway).
    pub flush_dir: Option<std::path::PathBuf>,
    /// Retry/backoff discipline applied by every node's RPC client.
    pub retry: RetryPolicy,
    /// Fault-injection profile; `None` runs the cluster fault-free.
    pub faults: Option<FaultProfile>,
    /// Replicated-coordinator shape and timers.
    pub coordinator: CoordinatorConfig,
    /// Multi-tenant admission control (off by default).
    pub quotas: QuotaConfig,
    /// Largest RPC frame a stream transport will accept before dropping
    /// the connection (guards against corrupt/hostile length prefixes).
    pub max_frame_bytes: usize,
    /// Causal tracing and the flight recorder. Metrics counters always
    /// work (they are plain relaxed atomics); with this off, every span
    /// entry point is an inert branch and envelopes carry zero trace ids
    /// (DESIGN.md §9).
    pub observability: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            brokers: 4,
            worker_threads: 4,
            transport: TransportChoice::default(),
            network: NetworkModel::default(),
            io_cost_ns: 0,
            flush_dir: None,
            retry: RetryPolicy::default(),
            faults: None,
            coordinator: CoordinatorConfig::default(),
            quotas: QuotaConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            observability: true,
        }
    }
}

impl ClusterConfig {
    pub fn validate(&self) -> Result<()> {
        if self.brokers == 0 {
            return Err(KeraError::InvalidConfig("cluster needs at least one broker".into()));
        }
        if self.worker_threads == 0 {
            return Err(KeraError::InvalidConfig("brokers need at least one worker thread".into()));
        }
        self.retry.validate()?;
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        self.coordinator.validate()?;
        self.quotas.validate()?;
        if self.max_frame_bytes < 1024 {
            return Err(KeraError::InvalidConfig(
                "max_frame_bytes must allow at least a small frame (>= 1024)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ClusterConfig::default().validate().unwrap();
        StreamConfig::default().validate().unwrap();
        ReplicationConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut r = ReplicationConfig { factor: 0, ..ReplicationConfig::default() };
        assert!(r.validate().is_err());
        r.factor = 3;
        r.policy = VirtualLogPolicy::SharedPerBroker(0);
        assert!(r.validate().is_err());

        let mut s = StreamConfig { streamlets: 0, ..StreamConfig::default() };
        assert!(s.validate().is_err());
        s.streamlets = 4;
        s.active_groups = 0;
        assert!(s.validate().is_err());

        let c = ClusterConfig { brokers: 0, ..ClusterConfig::default() };
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());

        let c = ClusterConfig {
            faults: Some(FaultProfile { drop_rate: 1.5, ..FaultProfile::default() }),
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ClusterConfig { max_frame_bytes: 16, ..ClusterConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn quota_config_validation() {
        let q = QuotaConfig::default();
        assert!(!q.enabled);
        q.validate().unwrap();

        // A disabled config is never consulted, so junk values pass.
        QuotaConfig { produce_bytes_per_sec: 0, ..q }.validate().unwrap();

        let on = QuotaConfig { enabled: true, ..q };
        on.validate().unwrap();
        assert!(QuotaConfig { produce_bytes_per_sec: 0, ..on }.validate().is_err());
        assert!(QuotaConfig { burst_bytes: 0, ..on }.validate().is_err());
        assert!(QuotaConfig { max_inflight_bytes: 0, ..on }.validate().is_err());
        assert!(QuotaConfig {
            admission_queue_bytes: on.max_inflight_bytes - 1,
            ..on
        }
        .validate()
        .is_err());
        assert!(QuotaConfig { reject_after_throttles: 0, ..on }.validate().is_err());
        assert!(QuotaConfig { evict_after_rejections: 0, ..on }.validate().is_err());
        assert!(QuotaConfig {
            evict_cooldown: std::time::Duration::ZERO,
            ..on
        }
        .validate()
        .is_err());

        let cluster = ClusterConfig { quotas: on, ..ClusterConfig::default() };
        cluster.validate().unwrap();
        let cluster = ClusterConfig {
            quotas: QuotaConfig { enabled: true, burst_bytes: 0, ..q },
            ..ClusterConfig::default()
        };
        assert!(cluster.validate().is_err());
    }

    #[test]
    fn coordinator_config_validation_and_quorum() {
        let c = CoordinatorConfig::default();
        c.validate().unwrap();
        assert_eq!(c.quorum(), 1);
        assert_eq!(CoordinatorConfig { replicas: 3, ..c }.quorum(), 2);
        assert_eq!(CoordinatorConfig { replicas: 5, ..c }.quorum(), 3);

        assert!(CoordinatorConfig { replicas: 0, ..c }.validate().is_err());
        assert!(CoordinatorConfig {
            election_timeout_min: c.heartbeat_interval, // < 2x heartbeat
            ..c
        }
        .validate()
        .is_err());
        assert!(CoordinatorConfig {
            election_timeout_max: std::time::Duration::from_millis(1),
            ..c
        }
        .validate()
        .is_err());
        assert!(CoordinatorConfig { snapshot_threshold: 0, ..c }.validate().is_err());

        let cluster = ClusterConfig {
            coordinator: CoordinatorConfig { replicas: 0, ..CoordinatorConfig::default() },
            ..ClusterConfig::default()
        };
        assert!(cluster.validate().is_err());
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            attempt_timeout: std::time::Duration::from_secs(1),
            initial_backoff: std::time::Duration::from_millis(10),
            max_backoff: std::time::Duration::from_millis(50),
        };
        assert_eq!(p.backoff_for(0), std::time::Duration::ZERO);
        assert_eq!(p.backoff_for(1), std::time::Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), std::time::Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), std::time::Duration::from_millis(40));
        assert_eq!(p.backoff_for(4), std::time::Duration::from_millis(50));
        assert_eq!(p.backoff_for(7), std::time::Duration::from_millis(50));
    }

    #[test]
    fn backup_copies() {
        let mut r = ReplicationConfig { factor: 3, ..ReplicationConfig::default() };
        assert_eq!(r.backup_copies(), 2);
        r.factor = 1;
        assert_eq!(r.backup_copies(), 0);
    }

    #[test]
    fn kafka_like_shape() {
        let s = StreamConfig::kafka_like(StreamId(5), 32);
        assert_eq!(s.streamlets, 32);
        assert_eq!(s.active_groups, 1);
        s.validate().unwrap();
    }

    #[test]
    fn network_model_costs() {
        let free = NetworkModel::default();
        assert!(free.is_free());
        assert_eq!(free.serialize_ns(1_000_000), 0);

        let gbe10 = NetworkModel { latency_ns: 20_000, bandwidth_bytes_per_sec: 1_250_000_000 };
        assert!(!gbe10.is_free());
        // 1.25 GB/s -> 1 MB takes 800 µs.
        assert_eq!(gbe10.serialize_ns(1_000_000), 800_000);
    }
}
