//! Software CRC32C (Castagnoli polynomial, reflected).
//!
//! Every integrity-bearing structure in the system — record entry headers,
//! chunk headers, virtual segment headers, on-disk segment files — uses this
//! checksum, mirroring RAMCloud's use of CRC32C for log entries.
//!
//! The implementation is a classic *slice-by-8* table walk whose tables are
//! generated at compile time by a `const fn`, so the crate needs no build
//! script and no hardware intrinsics; throughput is a few GB/s, far above
//! what the simulated cluster pushes per core.

/// Reflected CRC32C polynomial.
const POLY: u32 = 0x82f6_3b78;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Computes the CRC32C of `data` in one call.
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

/// Incremental CRC32C state.
///
/// ```
/// use kera_common::checksum::{crc32c, Crc32c};
/// let mut c = Crc32c::new();
/// c.update(b"hello ");
/// c.update(b"world");
/// assert_eq!(c.finish(), crc32c(b"hello world"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh state (equivalent to checksumming the empty string so far).
    #[inline]
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Resumes from a previously `finish()`ed value.
    #[inline]
    pub fn resume(crc: u32) -> Self {
        Self { state: !crc }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            // Standard slice-by-8: fold 4 bytes into the running CRC, then
            // look up all 8 bytes across the 8 tables.
            let low = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let high = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(low & 0xff) as usize]
                ^ TABLES[6][((low >> 8) & 0xff) as usize]
                ^ TABLES[5][((low >> 16) & 0xff) as usize]
                ^ TABLES[4][((low >> 24) & 0xff) as usize]
                ^ TABLES[3][(high & 0xff) as usize]
                ^ TABLES[2][((high >> 8) & 0xff) as usize]
                ^ TABLES[1][((high >> 16) & 0xff) as usize]
                ^ TABLES[0][((high >> 24) & 0xff) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Feeds a little-endian `u32` (used for checksum-of-checksums on
    /// virtual segments).
    #[inline]
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Returns the final checksum value.
    #[inline]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from RFC 3720 (iSCSI) appendix B.4.
    #[test]
    fn rfc3720_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113f_db5c);
    }

    #[test]
    fn classic_check_value() {
        // The canonical CRC32C check input.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn incremental_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|x| (x * 31 % 251) as u8).collect();
        let expect = crc32c(&data);
        for split in 0..=data.len() {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), expect, "split at {split}");
        }
    }

    #[test]
    fn resume_continues_state() {
        let mut a = Crc32c::new();
        a.update(b"abc");
        let mid = a.finish();
        let mut b = Crc32c::resume(mid);
        b.update(b"def");
        assert_eq!(b.finish(), crc32c(b"abcdef"));
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0xa5u8; 64];
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), base, "flip {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
