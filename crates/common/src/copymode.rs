//! Runtime switch between the zero-copy data plane and the seed's
//! copying data plane.
//!
//! The zero-copy port (DESIGN.md §12) leaves the seed's copy semantics
//! reachable behind `KERA_COPY_DATA_PLANE=1` so the perf-trajectory
//! benches (`kera-bench`, `BENCH_*.json`) can measure before/after in
//! the *same binary* — same compiler, same allocator, same machine —
//! instead of comparing numbers across builds. The switch is read once
//! and cached: the hot path pays one relaxed atomic load, never a
//! `getenv` syscall.
//!
//! This is a diagnostic/bench knob, not a supported configuration; both
//! modes produce byte-identical frames on the wire (proven by the
//! equivalence tests in `kera-bench`), they differ only in how many
//! times a payload byte is memcpy'd on its way from producer to backup.

use std::sync::OnceLock;

/// True when `KERA_COPY_DATA_PLANE=1` is set: data-plane hops fall back
/// to the seed's eager-copy behavior (chunk seal copies out of the
/// builder, request decode copies payloads out of the frame, replication
/// re-gathers and re-encodes its body).
pub fn copy_data_plane() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("KERA_COPY_DATA_PLANE").map(|v| v == "1").unwrap_or(false)
    })
}
