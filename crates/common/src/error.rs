//! The workspace-wide error type.

use std::fmt;
use std::io;

use crate::ids::{GroupRef, NodeId, StreamId, StreamletId};

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, KeraError>;

/// Every failure mode the storage system can surface.
///
/// The variants map one-to-one onto the response status codes carried on the
/// wire (see `kera-wire`), so a remote error can be reconstructed losslessly
/// on the client side.
#[derive(Debug)]
pub enum KeraError {
    /// An OS-level I/O failure (disk flusher, TCP transport).
    Io(io::Error),
    /// A checksum mismatch was detected while validating a record, chunk or
    /// virtual segment.
    Corruption {
        what: &'static str,
        expected: u32,
        actual: u32,
    },
    /// A malformed frame or message body.
    Protocol(String),
    /// The referenced stream does not exist on this broker/coordinator.
    UnknownStream(StreamId),
    /// The referenced streamlet does not exist (or is not owned here).
    UnknownStreamlet(StreamId, StreamletId),
    /// The referenced group does not exist.
    UnknownGroup(GroupRef),
    /// A stream with this id already exists.
    StreamExists(StreamId),
    /// An append did not fit and could not be retried (e.g. a chunk larger
    /// than a whole segment).
    ChunkTooLarge { chunk: usize, segment: usize },
    /// An RPC did not complete within its deadline.
    Timeout { op: &'static str },
    /// The peer is gone (crashed node, closed channel or socket).
    Disconnected(NodeId),
    /// The cluster has no node able to serve the request (e.g. not enough
    /// backups for the requested replication factor).
    NoCapacity(String),
    /// The request was valid but the node is shutting down.
    ShuttingDown,
    /// Recovery-specific failure.
    Recovery(String),
    /// Invalid user-supplied configuration.
    InvalidConfig(String),
    /// The coordinator replica addressed is not the current leader. The
    /// caller should re-issue the request against `hint` (the leader the
    /// replica last heard from, if any) rather than blindly retrying.
    NotLeader {
        /// Best-known leader, if the replica has heard from one this term.
        hint: Option<NodeId>,
        /// The replica's current term, so stale hints can be ranked.
        term: u64,
    },
    /// The broker's admission gate deferred the request: the tenant is
    /// over its quota but in good standing. Honor `retry_after` (plus
    /// jitter) before retrying, and shrink the in-flight window to
    /// `window_hint` bytes.
    Throttled {
        /// Broker's estimate of when the tenant's token bucket can
        /// cover the request.
        retry_after: std::time::Duration,
        /// Suggested cap on the sender's in-flight bytes (`0` = no
        /// suggestion).
        window_hint: u64,
    },
    /// The broker's admission gate refused the request outright — the
    /// tenant ignored throttles, the broker is out of admission-queue
    /// memory, or the session has been evicted. Not retriable: the
    /// sender must back off for an extended period or give up.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// An encoder was handed a buffer too large for its `u32` length
    /// field. Truncating the cast would produce a frame that *decodes*
    /// — with a silently wrong length — so this must surface as an
    /// error at encode time, never on the wire.
    EncodeOverflow {
        /// Which length field overflowed.
        what: &'static str,
        /// The length that did not fit in `u32`.
        len: usize,
    },
}

impl KeraError {
    /// True when the operation may be safely retried by the client
    /// (idempotent chunk tagging makes produce retries exactly-once).
    ///
    /// `NotLeader` is deliberately *not* retriable: retrying the same
    /// replica cannot succeed — the caller must re-resolve the leader
    /// (see `RpcClient::call_leader`) and redirect.
    ///
    /// `Throttled` is likewise not blind-retriable: the RPC layer's
    /// immediate-retry loop would defeat the backpressure. The producer
    /// handles it explicitly — sleep `retry_after` (jittered), shrink
    /// the window, then retry through the idempotent dedup path.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            KeraError::Timeout { .. } | KeraError::Disconnected(_) | KeraError::ShuttingDown
        )
    }
}

impl fmt::Display for KeraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeraError::Io(e) => write!(f, "i/o error: {e}"),
            KeraError::Corruption { what, expected, actual } => write!(
                f,
                "corruption detected in {what}: expected checksum {expected:#010x}, got {actual:#010x}"
            ),
            KeraError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            KeraError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            KeraError::UnknownStreamlet(s, p) => write!(f, "unknown streamlet {p} of stream {s}"),
            KeraError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            KeraError::StreamExists(s) => write!(f, "stream {s} already exists"),
            KeraError::ChunkTooLarge { chunk, segment } => {
                write!(f, "chunk of {chunk} bytes cannot fit in a {segment}-byte segment")
            }
            KeraError::Timeout { op } => write!(f, "operation {op} timed out"),
            KeraError::Disconnected(n) => write!(f, "peer {n} disconnected"),
            KeraError::NoCapacity(msg) => write!(f, "no capacity: {msg}"),
            KeraError::ShuttingDown => write!(f, "node is shutting down"),
            KeraError::Recovery(msg) => write!(f, "recovery failure: {msg}"),
            KeraError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            KeraError::NotLeader { hint: Some(n), term } => {
                write!(f, "not the leader (term {term}, try {n})")
            }
            KeraError::NotLeader { hint: None, term } => {
                write!(f, "not the leader (term {term}, leader unknown)")
            }
            KeraError::Throttled { retry_after, window_hint } => write!(
                f,
                "throttled: retry after {}us (window hint {window_hint} bytes)",
                retry_after.as_micros()
            ),
            KeraError::Rejected { reason } => write!(f, "rejected by admission control: {reason}"),
            KeraError::EncodeOverflow { what, len } => {
                write!(f, "{what} of {len} bytes exceeds the u32 length field")
            }
        }
    }
}

impl std::error::Error for KeraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KeraError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KeraError {
    fn from(e: io::Error) -> Self {
        KeraError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GroupId;

    #[test]
    fn display_formats() {
        let e = KeraError::Corruption { what: "chunk", expected: 1, actual: 2 };
        assert!(e.to_string().contains("chunk"));
        assert!(e.to_string().contains("0x00000001"));

        let e = KeraError::UnknownGroup(GroupRef::new(StreamId(1), StreamletId(2), GroupId(3)));
        assert!(e.to_string().contains("s1/p2/g3"));
    }

    #[test]
    fn retriability() {
        assert!(KeraError::Timeout { op: "produce" }.is_retriable());
        assert!(KeraError::Disconnected(NodeId(3)).is_retriable());
        assert!(!KeraError::UnknownStream(StreamId(1)).is_retriable());
        assert!(!KeraError::Protocol("x".into()).is_retriable());
        // NotLeader requires re-resolution, not a same-node retry.
        assert!(!KeraError::NotLeader { hint: Some(NodeId(3)), term: 2 }.is_retriable());
        // Throttle/reject must not feed the blind retry loop: backoff is
        // the producer's job, immediately re-sending defeats the gate.
        let t = KeraError::Throttled {
            retry_after: std::time::Duration::from_millis(5),
            window_hint: 1 << 20,
        };
        assert!(!t.is_retriable());
        assert!(!KeraError::Rejected { reason: "evicted".into() }.is_retriable());
    }

    #[test]
    fn throttle_display() {
        let t = KeraError::Throttled {
            retry_after: std::time::Duration::from_micros(1500),
            window_hint: 4096,
        };
        assert!(t.to_string().contains("1500us"));
        assert!(t.to_string().contains("4096"));
        let r = KeraError::Rejected { reason: "admission queue full".into() };
        assert!(r.to_string().contains("admission queue full"));
    }

    #[test]
    fn not_leader_display() {
        let e = KeraError::NotLeader { hint: Some(NodeId(3000)), term: 7 };
        assert!(e.to_string().contains("term 7"));
        assert!(e.to_string().contains("NodeId(3000)"));
        let e = KeraError::NotLeader { hint: None, term: 1 };
        assert!(e.to_string().contains("leader unknown"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: KeraError = io::Error::other("boom").into();
        assert!(matches!(e, KeraError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
