//! Criterion glue: benchmarks one figure's representative points on a
//! persistent cluster rig.
//!
//! `cargo bench -p kera-bench --bench figNN` reports nanoseconds per
//! *acknowledged record* (Criterion throughput = elements/s); the full
//! paper-shaped sweeps live in the `kera-harness` binaries
//! (`cargo run --release -p kera-harness --bin figNN`).

use std::time::Duration;

use criterion::{BenchmarkId, Criterion, Throughput};
use kera_harness::figures::{figure, quick};
use kera_harness::rig::BenchRig;

/// Number of figure points benchmarked per figure (keeps `cargo bench
/// --workspace` tractable; the harness binaries run the full sweeps).
pub const POINTS_PER_FIGURE: usize = 3;

/// Benchmarks a subset of `id`'s points: time to ingest records
/// end-to-end (append + replication + ack) on a warm cluster.
pub fn bench_figure(c: &mut Criterion, id: &str) {
    let fig = quick(
        figure(id).unwrap_or_else(|| panic!("unknown figure {id}")),
        POINTS_PER_FIGURE,
        Duration::from_millis(200),
    );
    let mut group = c.benchmark_group(id);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for point in &fig.points {
        let rig = match BenchRig::start(&point.cfg) {
            Ok(rig) => rig,
            Err(e) => panic!("{id} point {}/{} failed to start: {e}", point.series, point.x),
        };
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new(&point.series, &point.x), |b| {
            b.iter_custom(|iters| rig.ingest(iters));
        });
        rig.stop();
    }
    group.finish();
}
