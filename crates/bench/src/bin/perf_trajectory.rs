//! Pinned perf-trajectory bench: the copy data plane (seed) vs the
//! zero-copy data plane, measured in the same build.
//!
//! Three benches, each run in two child processes — one with
//! `KERA_COPY_DATA_PLANE=1` (the seed's copy semantics, kept reachable
//! behind the runtime switch) and one without (zero-copy) — so both
//! sides go through the real library branches:
//!
//! - **append**: producer builds + seals chunks, packs a produce
//!   request, broker unpacks it (ns per record).
//! - **replication**: virtual-log gather + single-pack of a backup
//!   write, backup-side decode + batch retention (ns per chunk).
//! - **e2e**: one figure-9 point (KerA R2, 4 producers, chunk 16 KB,
//!   one log per partition) through the full cluster (ns per record).
//!
//! Results land in `BENCH_append.json` / `BENCH_replication.json` /
//! `BENCH_e2e.json` — at the repo root with `--pin` (the committed
//! trajectory), under `results/tmp/` otherwise (smoke runs never
//! clobber the pinned files). The run **fails** (non-zero exit) when a
//! speedup falls below its gate, which is how `scripts/ci.sh` catches a
//! zero-copy regression.

use std::fmt::Write as _;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use kera_common::copymode::copy_data_plane;
use kera_common::ids::*;
use kera_harness::rig::BenchRig;
use kera_wire::chunk::{BufferPool, ChunkBuilder, ChunkIter};
use kera_wire::frames::{Envelope, OpCode};
use kera_wire::messages::{BackupWriteRequest, EncodedBackupWrite, ProduceRequest};
use kera_wire::record::Record;

/// Chunks packed per produce request / replication batch.
const CHUNKS_PER_BATCH: usize = 8;
/// Records per chunk in the micro benches.
const RECORDS_PER_CHUNK: usize = 100;

/// Minimum speedup (copy-mode time / zero-copy time) each bench must
/// hold. The append path is where the tentpole removes three of five
/// per-byte copies; replication removes the double pack; the e2e point
/// is dominated by cluster machinery, so its gate only catches a real
/// regression.
const GATES: [(&str, f64); 3] = [("append", 1.20), ("replication", 1.05), ("e2e", 0.85)];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 4 && args[1] == "--child" {
        let iters: u64 = args[3].parse().expect("child iters");
        let ns_per_unit = match args[2].as_str() {
            "append" => child_append(iters),
            "replication" => child_replication(iters),
            "e2e" => child_e2e(iters),
            other => panic!("unknown child bench {other}"),
        };
        // The parent parses exactly this line.
        println!("RESULT_NS_PER_UNIT {ns_per_unit}");
        return;
    }
    let pin = args.iter().any(|a| a == "--pin");
    parent(pin);
}

// ---------------------------------------------------------------------------
// Parent: spawn each bench in both modes, write JSON, gate.
// ---------------------------------------------------------------------------

fn parent(pin: bool) {
    let exe = std::env::current_exe().expect("current exe");
    let out_dir = if pin {
        std::path::PathBuf::from(".")
    } else {
        let d = std::path::PathBuf::from("results/tmp");
        std::fs::create_dir_all(&d).expect("create results/tmp");
        d
    };
    let benches: [(&str, u64, &str); 3] = [
        ("append", 2_000, "ns_per_record"),
        ("replication", 10_000, "ns_per_chunk"),
        ("e2e", 60_000, "ns_per_record"),
    ];
    let mut failures = Vec::new();
    for (name, iters, unit) in benches {
        let before = run_child(&exe, name, iters, true);
        let after = run_child(&exe, name, iters, false);
        let speedup = before / after;
        let gate = GATES.iter().find(|(n, _)| *n == name).map(|(_, g)| *g).unwrap();
        let path = out_dir.join(format!("BENCH_{name}.json"));
        std::fs::write(&path, trajectory_json(name, unit, gate, before, after, speedup))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        let verdict = if speedup >= gate { "ok" } else { "REGRESSION" };
        println!(
            "{name:12} copy {before:10.1} {unit}   zero-copy {after:10.1} {unit}   \
             speedup {speedup:.2}x (gate {gate:.2}x) {verdict}"
        );
        if speedup < gate {
            failures.push(format!("{name}: {speedup:.2}x < gate {gate:.2}x"));
        }
    }
    if !failures.is_empty() {
        eprintln!("bench gate failed: {}", failures.join("; "));
        std::process::exit(1);
    }
}

fn run_child(exe: &std::path::Path, bench: &str, iters: u64, copy_mode: bool) -> f64 {
    let out = Command::new(exe)
        .args(["--child", bench, &iters.to_string()])
        .env("KERA_COPY_DATA_PLANE", if copy_mode { "1" } else { "0" })
        .output()
        .unwrap_or_else(|e| panic!("spawn {bench} child: {e}"));
    if !out.status.success() {
        panic!(
            "{bench} child (copy={copy_mode}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("RESULT_NS_PER_UNIT "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{bench} child printed no result:\n{stdout}"))
}

fn trajectory_json(
    name: &str,
    unit: &str,
    gate: f64,
    before: f64,
    after: f64,
    speedup: f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"{name}\",");
    let _ = writeln!(s, "  \"unit\": \"{unit}\",");
    let _ = writeln!(s, "  \"gate_min_speedup\": {gate},");
    let _ = writeln!(s, "  \"entries\": [");
    let _ = writeln!(
        s,
        "    {{\"mode\": \"before\", \"label\": \"copy data plane (seed, \
         KERA_COPY_DATA_PLANE=1)\", \"{unit}\": {before:.1}}},"
    );
    let _ = writeln!(
        s,
        "    {{\"mode\": \"after\", \"label\": \"zero-copy data plane\", \
         \"{unit}\": {after:.1}}}"
    );
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"speedup\": {speedup:.3}");
    let _ = writeln!(s, "}}");
    s
}

// ---------------------------------------------------------------------------
// Children: each measures the real library path under the current mode.
// ---------------------------------------------------------------------------

/// Producer → broker append path: build + seal `CHUNKS_PER_BATCH`
/// chunks, pack one produce request (mirroring the producer's requests
/// thread), decode it broker-side and walk the chunk train. Returns ns
/// per record.
fn child_append(iters: u64) -> f64 {
    let pool = BufferPool::new(64 * 1024, 16);
    let mut builder =
        ChunkBuilder::with_pool(Arc::clone(&pool), ProducerId(1), StreamId(1), StreamletId(0));
    let payload = vec![7u8; 100];
    let rec = Record::value_only(&payload);

    let mut run = |n: u64| {
        let start = Instant::now();
        for _ in 0..n {
            let mut chunks: Vec<Bytes> = Vec::with_capacity(CHUNKS_PER_BATCH);
            let mut total = 0usize;
            for _ in 0..CHUNKS_PER_BATCH {
                for _ in 0..RECORDS_PER_CHUNK {
                    assert!(builder.append(&rec));
                }
                let sealed = builder.seal();
                total += sealed.len();
                chunks.push(sealed);
            }
            // Pack the request the way the producer's requests thread
            // does in each mode.
            let payload = if copy_data_plane() {
                let mut body = Vec::with_capacity(total);
                for c in &chunks {
                    body.extend_from_slice(c);
                }
                ProduceRequest {
                    producer: ProducerId(1),
                    recovery: false,
                    chunk_count: CHUNKS_PER_BATCH as u32,
                    chunks: Bytes::from(body),
                }
                .encode()
            } else {
                ProduceRequest::encode_chunks(ProducerId(1), false, &chunks)
            };
            for c in chunks {
                pool.release(c);
            }
            // Transport hop, as `kera_rpc::tcp` runs it: the sender
            // frames the envelope, the receiver reads the frame off the
            // socket and decodes. The socket read copies in both modes;
            // the seed additionally pre-copied the whole frame on tx
            // (`Envelope::encode`) and copied the payload back out of
            // it on rx (`Envelope::decode`).
            let env = Envelope::request(OpCode::Produce, 1, NodeId(1), payload);
            let rx: Bytes = if copy_data_plane() {
                let frame = env.encode(); // tx assembles a contiguous frame
                let mut sock = Vec::with_capacity(frame.len());
                sock.extend_from_slice(&frame); // socket read
                Bytes::from(sock)
            } else {
                // tx writes the 40-byte header and the payload as two
                // gathered writes — no frame assembly.
                let header = env.encode_header();
                let mut sock = BytesMut::with_capacity(Envelope::HEADER_LEN + env.payload.len());
                sock.extend_from_slice(&header); // socket read
                sock.extend_from_slice(&env.payload);
                sock.freeze()
            };
            let env = if copy_data_plane() {
                Envelope::decode(&rx).unwrap()
            } else {
                Envelope::decode_bytes(&rx).unwrap()
            };
            // Broker side: unpack and walk the chunk train.
            let req = if copy_data_plane() {
                ProduceRequest::decode(&env.payload).unwrap()
            } else {
                ProduceRequest::decode_bytes(&env.payload).unwrap()
            };
            let mut records = 0u64;
            for chunk in ChunkIter::new(&req.chunks) {
                records += u64::from(chunk.unwrap().header().record_count);
            }
            assert_eq!(records, (CHUNKS_PER_BATCH * RECORDS_PER_CHUNK) as u64);
        }
        start.elapsed()
    };

    run(iters / 10 + 1); // warmup
    let elapsed = run(iters);
    elapsed.as_nanos() as f64 / (iters * (CHUNKS_PER_BATCH * RECORDS_PER_CHUNK) as u64) as f64
}

/// Virtual log → backup replication path: gather `CHUNKS_PER_BATCH`
/// chunk slices into one backup write (the single pack), then the
/// backup-side decode + batch retention. Returns ns per chunk.
fn child_replication(iters: u64) -> f64 {
    // Source material: sealed chunks standing in for segment regions
    // (`ChunkRef::bytes()` also yields plain slices).
    let mut builder = ChunkBuilder::new(64 * 1024, ProducerId(1), StreamId(1), StreamletId(0));
    let payload = vec![5u8; 100];
    let rec = Record::value_only(&payload);
    let chunks: Vec<Bytes> = (0..CHUNKS_PER_BATCH)
        .map(|_| {
            for _ in 0..RECORDS_PER_CHUNK {
                assert!(builder.append(&rec));
            }
            builder.seal()
        })
        .collect();
    let total: usize = chunks.iter().map(|c| c.len()).sum();

    let run = |n: u64| {
        let start = Instant::now();
        for i in 0..n {
            let req = if copy_data_plane() {
                // The seed's double copy: gather buffer, then encode.
                let mut buf = BytesMut::with_capacity(total);
                for c in &chunks {
                    buf.extend_from_slice(c);
                }
                EncodedBackupWrite::from_request(&BackupWriteRequest {
                    source_broker: NodeId(0),
                    vlog: VirtualLogId(0),
                    vseg: VirtualSegmentId(i),
                    vseg_offset: 0,
                    flags: 0,
                    vseg_checksum: 0,
                    chunk_count: CHUNKS_PER_BATCH as u32,
                    chunks: buf.freeze(),
                })
            } else {
                EncodedBackupWrite::pack(
                    NodeId(0),
                    VirtualLogId(0),
                    VirtualSegmentId(i),
                    0,
                    0,
                    0,
                    CHUNKS_PER_BATCH as u32,
                    total,
                    chunks.iter().map(|c| c.as_ref()),
                )
            };
            // Backup side: decode off the shared body and retain the
            // batch the way `BackupService::handle_write` does.
            let decoded = if copy_data_plane() {
                BackupWriteRequest::decode(req.body()).unwrap()
            } else {
                req.request().unwrap()
            };
            let batch = if copy_data_plane() {
                Bytes::copy_from_slice(&decoded.chunks)
            } else {
                decoded.chunks.clone()
            };
            assert_eq!(batch.len(), total);
        }
        start.elapsed()
    };

    run(iters / 10 + 1); // warmup
    let elapsed = run(iters);
    elapsed.as_nanos() as f64 / (iters * CHUNKS_PER_BATCH as u64) as f64
}

/// One figure-9 point end to end: KerA, 4 producers, 128 streams, chunk
/// 16 KB, R2, one log per partition. Simulated storage IO cost is
/// disabled so the data plane (not the modeled disk) dominates. Returns
/// ns per acknowledged record.
fn child_e2e(records: u64) -> f64 {
    use kera_harness::experiment::{ExperimentConfig, SystemKind};
    use kera_common::config::VirtualLogPolicy;

    let cfg = ExperimentConfig {
        system: SystemKind::Kera,
        producers: 4,
        consumers: 0,
        streams: 128,
        streamlets_per_stream: 1,
        chunk_size: 16 * 1024,
        replication_factor: 2,
        vlog_policy: VirtualLogPolicy::PerStreamlet,
        io_cost_ns: 0,
        ..ExperimentConfig::default()
    };
    let rig = BenchRig::start(&cfg).expect("start fig09 rig");
    rig.ingest(records / 10 + 1); // warmup
    let elapsed = rig.ingest(records);
    rig.stop();
    elapsed.as_nanos() as f64 / records as f64
}
