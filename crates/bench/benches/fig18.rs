//! Criterion bench for Figure 18 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig18`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig18(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig18");
}

criterion_group!(benches, fig18);
criterion_main!(benches);
