//! Microbenchmarks of the hot-path building blocks: checksums, record
//! and chunk codecs, segment appends, virtual-log appends and the RPC
//! stack itself.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kera_common::checksum::crc32c;
use kera_common::config::NetworkModel;
use kera_common::ids::*;
use kera_rpc::{InMemNetwork, NodeRuntime, NullService, RequestContext, Service};
use kera_storage::buffer::AppendBuffer;
use kera_storage::segment::Segment;
use kera_vlog::channel::MockChannel;
use kera_vlog::selector::{BackupSelector, SelectionPolicy};
use kera_vlog::vlog::VirtualLog;
use kera_vlog::vseg::ChunkRef;
use kera_wire::chunk::{ChunkBuilder, ChunkView};
use kera_wire::frames::OpCode;
use kera_wire::record::Record;

fn bench_crc32c(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32c");
    for size in [64usize, 1024, 16 * 1024, 1 << 20] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| crc32c(std::hint::black_box(data)));
        });
    }
    g.finish();
}

fn bench_record_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("record");
    let payload = vec![7u8; 100];
    let rec = Record::value_only(&payload);
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_100B", |b| {
        let mut out = Vec::with_capacity(256);
        b.iter(|| {
            out.clear();
            rec.encode_into(&mut out)
        });
    });
    let mut buf = Vec::new();
    rec.encode_into(&mut buf);
    g.bench_function("parse_and_verify_100B", |b| {
        b.iter(|| {
            let v = kera_wire::record::RecordView::parse(std::hint::black_box(&buf)).unwrap();
            v.verify().unwrap();
            v.value().len()
        });
    });
    g.finish();
}

fn sample_chunk(records: usize) -> Bytes {
    let mut b = ChunkBuilder::new(64 * 1024, ProducerId(0), StreamId(1), StreamletId(0));
    let payload = vec![1u8; 100];
    for _ in 0..records {
        assert!(b.append(&Record::value_only(&payload)));
    }
    b.seal()
}

fn bench_chunk_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk");
    let payload = vec![1u8; 100];
    g.throughput(Throughput::Elements(100));
    g.bench_function("build_seal_100rec", |b| {
        let mut builder = ChunkBuilder::new(64 * 1024, ProducerId(0), StreamId(1), StreamletId(0));
        b.iter(|| {
            builder.reset(ProducerId(0), StreamId(1), StreamletId(0));
            for _ in 0..100 {
                builder.append(&Record::value_only(&payload));
            }
            builder.seal()
        });
    });
    let chunk = sample_chunk(100);
    g.bench_function("parse_verify_100rec", |b| {
        b.iter(|| {
            let v = ChunkView::parse(std::hint::black_box(&chunk)).unwrap();
            v.verify().unwrap();
            v.records().count()
        });
    });
    g.finish();
}

fn bench_append_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("append_buffer");
    let data = vec![0u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("append_1KB", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            let mut remaining = iters;
            while remaining > 0 {
                let n = remaining.min(16 * 1024);
                let buf = AppendBuffer::new(n as usize * 1024);
                let start = std::time::Instant::now();
                for _ in 0..n {
                    buf.append(&data).unwrap();
                }
                total += start.elapsed();
                remaining -= n;
            }
            total
        });
    });
    g.finish();
}

fn bench_segment_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment");
    let chunk = sample_chunk(10);
    g.throughput(Throughput::Elements(10));
    g.bench_function("append_chunk_10rec", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            let mut remaining = iters;
            let gref = GroupRef::new(StreamId(1), StreamletId(0), GroupId(0));
            while remaining > 0 {
                let n = remaining.min(4096);
                let seg = Segment::new(gref, SegmentId(0), (n as usize + 1) * chunk.len());
                let start = std::time::Instant::now();
                for i in 0..n {
                    seg.append_chunk(&chunk, i * 10).unwrap();
                }
                total += start.elapsed();
                remaining -= n;
            }
            total
        });
    });
    g.finish();
}

fn bench_vlog(c: &mut Criterion) {
    let mut g = c.benchmark_group("vlog");
    let chunk = sample_chunk(10);
    let gref = GroupRef::new(StreamId(1), StreamletId(0), GroupId(0));
    g.throughput(Throughput::Elements(1));
    g.bench_function("append_and_sync_chunk", |b| {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let selector = BackupSelector::new(NodeId(0), &nodes, SelectionPolicy::RoundRobin, 0);
        let vlog = VirtualLog::new(VirtualLogId(0), NodeId(0), 1 << 30, 2, selector).unwrap();
        let channel = MockChannel::new();
        // Criterion runs millions of iterations; roll physical segments
        // as they fill (fresh 64 MB arena each time).
        let seg_cap = 64 << 20;
        let mut seg = Arc::new(Segment::new(gref, SegmentId(0), seg_cap));
        b.iter(|| {
            if !seg.fits(chunk.len()) {
                seg = Arc::new(Segment::new(gref, SegmentId(0), seg_cap));
            }
            let at = seg.append_chunk(&chunk, 0).unwrap();
            let ticket = vlog
                .append(ChunkRef {
                    segment: Arc::clone(&seg),
                    offset: at.offset,
                    len: at.len,
                    checksum: 0,
                    gref,
                })
                .unwrap();
            vlog.sync(&channel, ticket).unwrap();
        });
    });
    g.finish();
}

struct Echo;
impl Service for Echo {
    fn handle(&self, _ctx: &RequestContext, payload: Bytes) -> kera_common::Result<Bytes> {
        Ok(payload)
    }
}

fn bench_rpc(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc");
    g.throughput(Throughput::Elements(1));
    let net = InMemNetwork::new(NetworkModel::default());
    let _server = NodeRuntime::start(Arc::new(net.register(NodeId(1))), Arc::new(Echo), 2);
    let client_rt = NodeRuntime::start(Arc::new(net.register(NodeId(2))), Arc::new(NullService), 1);
    let client = client_rt.client();
    for payload_size in [64usize, 1024, 16 * 1024] {
        let payload = Bytes::from(vec![0u8; payload_size]);
        g.bench_with_input(
            BenchmarkId::new("inmem_roundtrip", payload_size),
            &payload,
            |b, payload| {
                b.iter(|| {
                    client
                        .call(NodeId(1), OpCode::Ping, payload.clone(), Duration::from_secs(5))
                        .unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_crc32c,
    bench_record_codec,
    bench_chunk_codec,
    bench_append_buffer,
    bench_segment_append,
    bench_vlog,
    bench_rpc
);
criterion_main!(benches);
