//! Criterion bench for Figure 08 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig08`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig08(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig08");
}

criterion_group!(benches, fig08);
criterion_main!(benches);
