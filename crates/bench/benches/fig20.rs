//! Criterion bench for Figure 20 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig20`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig20(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig20");
}

criterion_group!(benches, fig20);
criterion_main!(benches);
