//! Criterion bench for Figure 16 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig16`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig16(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig16");
}

criterion_group!(benches, fig16);
criterion_main!(benches);
