//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! 1. **Consolidation** — shared virtual logs vs one log per partition,
//!    many small streams (the core claim);
//! 2. **Active vs passive replication** — KerA configured like Kafka
//!    (one log per partition) vs the Kafka baseline itself;
//! 3. **Backup selection** — round-robin vs random-distinct selector
//!    cost;
//! 4. **Replication capacity overshoot** — 1 vs 64 shared virtual logs
//!    at 128 streams;
//! 5. **IO-cost sensitivity** — the calibrated per-storage-write cost
//!    (EXPERIMENTS.md): how the KerA/Kafka gap responds to it.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kera_common::config::VirtualLogPolicy;
use kera_common::ids::NodeId;
use kera_harness::experiment::{ExperimentConfig, SystemKind};
use kera_harness::rig::BenchRig;
use kera_vlog::selector::{BackupSelector, SelectionPolicy};

fn small_streams(system: SystemKind, policy: VirtualLogPolicy) -> ExperimentConfig {
    ExperimentConfig {
        system,
        producers: 4,
        streams: 64,
        streamlets_per_stream: 1,
        chunk_size: 1024,
        replication_factor: 3,
        vlog_policy: policy,
        ..ExperimentConfig::default()
    }
}

fn bench_consolidation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_consolidation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(1));
    let variants = [
        ("shared_4_vlogs", VirtualLogPolicy::SharedPerBroker(4)),
        ("one_log_per_partition", VirtualLogPolicy::PerStreamlet),
    ];
    for (name, policy) in variants {
        let rig = BenchRig::start(&small_streams(SystemKind::Kera, policy)).unwrap();
        g.bench_function(name, |b| b.iter_custom(|iters| rig.ingest(iters)));
        rig.stop();
    }
    g.finish();
}

fn bench_active_vs_passive(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_active_vs_passive");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(1));
    // Same partitioning (one replicated log per partition) so only the
    // replication direction differs.
    let variants = [
        ("kera_active_push", SystemKind::Kera),
        ("kafka_passive_pull", SystemKind::Kafka),
    ];
    for (name, system) in variants {
        let rig =
            BenchRig::start(&small_streams(system, VirtualLogPolicy::PerStreamlet)).unwrap();
        g.bench_function(name, |b| b.iter_custom(|iters| rig.ingest(iters)));
        rig.stop();
    }
    g.finish();
}

fn bench_capacity_overshoot(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vlog_count");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(1));
    for vlogs in [1u32, 4, 64] {
        let mut cfg = small_streams(SystemKind::Kera, VirtualLogPolicy::SharedPerBroker(vlogs));
        cfg.streams = 128;
        cfg.producers = 8;
        let rig = BenchRig::start(&cfg).unwrap();
        g.bench_function(BenchmarkId::from_parameter(vlogs), |b| {
            b.iter_custom(|iters| rig.ingest(iters))
        });
        rig.stop();
    }
    g.finish();
}

fn bench_backup_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_backup_selection");
    let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
    for (name, policy) in [
        ("round_robin", SelectionPolicy::RoundRobin),
        ("random_distinct", SelectionPolicy::RandomDistinct),
    ] {
        g.bench_function(name, |b| {
            let mut sel = BackupSelector::new(NodeId(0), &nodes, policy, 42);
            b.iter(|| sel.select(2).unwrap());
        });
    }
    g.finish();
}

fn bench_io_cost_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_io_cost");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(1));
    for io_us in [0u64, 10, 30] {
        for (name, system, policy) in [
            ("kera", SystemKind::Kera, VirtualLogPolicy::SharedPerBroker(4)),
            ("kafka", SystemKind::Kafka, VirtualLogPolicy::PerStreamlet),
        ] {
            let mut cfg = small_streams(system, policy);
            cfg.streams = 128;
            cfg.io_cost_ns = io_us * 1000;
            let rig = BenchRig::start(&cfg).unwrap();
            g.bench_function(BenchmarkId::new(name, format!("{io_us}us")), |b| {
                b.iter_custom(|iters| rig.ingest(iters))
            });
            rig.stop();
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_consolidation,
    bench_active_vs_passive,
    bench_capacity_overshoot,
    bench_backup_selection,
    bench_io_cost_sensitivity
);
criterion_main!(benches);
