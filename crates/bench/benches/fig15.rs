//! Criterion bench for Figure 15 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig15`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig15(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig15");
}

criterion_group!(benches, fig15);
criterion_main!(benches);
