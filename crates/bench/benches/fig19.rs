//! Criterion bench for Figure 19 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig19`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig19(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig19");
}

criterion_group!(benches, fig19);
criterion_main!(benches);
