//! Criterion bench for Figure 21 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig21`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig21(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig21");
}

criterion_group!(benches, fig21);
criterion_main!(benches);
