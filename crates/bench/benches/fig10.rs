//! Criterion bench for Figure 10 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig10`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig10(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig10");
}

criterion_group!(benches, fig10);
criterion_main!(benches);
