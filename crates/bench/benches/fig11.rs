//! Criterion bench for Figure 11 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig11`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig11(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig11");
}

criterion_group!(benches, fig11);
criterion_main!(benches);
