//! Criterion bench for Figure 12 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig12`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig12(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig12");
}

criterion_group!(benches, fig12);
criterion_main!(benches);
