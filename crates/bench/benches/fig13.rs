//! Criterion bench for Figure 13 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig13`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig13(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig13");
}

criterion_group!(benches, fig13);
criterion_main!(benches);
