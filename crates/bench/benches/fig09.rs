//! Criterion bench for Figure 09 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig09`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig09(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig09");
}

criterion_group!(benches, fig09);
criterion_main!(benches);
