//! Criterion bench for Figure 17 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig17`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig17(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig17");
}

criterion_group!(benches, fig17);
criterion_main!(benches);
