//! Criterion bench for Figure 14 (representative points; full sweep in
//! `cargo run --release -p kera-harness --bin fig14`).
use criterion::{criterion_group, criterion_main, Criterion};

fn fig14(c: &mut Criterion) {
    kera_bench::bench_figure(c, "fig14");
}

criterion_group!(benches, fig14);
criterion_main!(benches);
