//! Golden-output conformance test for the Prometheus text exposition
//! format (`RegistrySnapshot::to_prometheus`).
//!
//! The exact bytes matter: a scraper parses this format, so `# TYPE`
//! placement, label escaping and cumulative bucket arithmetic are wire
//! contracts, not cosmetics. The golden string below is the contract;
//! update it deliberately, not to silence a diff.

use kera_common::metrics::HistogramSnapshot;
use kera_obs::{MetricKey, MetricsRegistry, RegistrySnapshot};

#[test]
fn prometheus_export_matches_golden_output() {
    let mut snap = RegistrySnapshot::default();
    snap.counters
        .insert(MetricKey::new("kera.rpc.calls", &[("node", "1"), ("op", "append")]), 7);
    snap.counters
        .insert(MetricKey::new("kera.rpc.calls", &[("node", "2"), ("op", "fetch")]), 3);
    // Label values with every escape case: quote, backslash, newline.
    snap.counters
        .insert(MetricKey::new("kera.weird-name.total", &[("msg", "say \"hi\"\\\n")]), 1);
    snap.gauges.insert(MetricKey::new("kera.pool.outstanding", &[("node", "1")]), -2);
    let mut h = HistogramSnapshot::empty();
    h.buckets[0] = 1; // 1ns      -> le="1"
    h.buckets[6] = 2; // 64..127  -> le="127"
    h.buckets[12] = 1; // ..8191  -> le="8191"
    h.count = 4;
    h.sum_ns = 5221;
    h.max_ns = 5000;
    snap.histograms
        .insert(MetricKey::new("kera.trace.stage", &[("node", "1"), ("stage", "append")]), h);

    let golden = concat!(
        "# TYPE kera_rpc_calls counter\n",
        "kera_rpc_calls{node=\"1\",op=\"append\"} 7\n",
        "kera_rpc_calls{node=\"2\",op=\"fetch\"} 3\n",
        "# TYPE kera_weird_name_total counter\n",
        "kera_weird_name_total{msg=\"say \\\"hi\\\"\\\\\\n\"} 1\n",
        "# TYPE kera_pool_outstanding gauge\n",
        "kera_pool_outstanding{node=\"1\"} -2\n",
        "# TYPE kera_trace_stage histogram\n",
        "kera_trace_stage_bucket{node=\"1\",stage=\"append\",le=\"1\"} 1\n",
        "kera_trace_stage_bucket{node=\"1\",stage=\"append\",le=\"127\"} 3\n",
        "kera_trace_stage_bucket{node=\"1\",stage=\"append\",le=\"8191\"} 4\n",
        "kera_trace_stage_bucket{node=\"1\",stage=\"append\",le=\"+Inf\"} 4\n",
        "kera_trace_stage_sum{node=\"1\",stage=\"append\"} 5221\n",
        "kera_trace_stage_count{node=\"1\",stage=\"append\"} 4\n",
    );
    let text = snap.to_prometheus();
    assert_eq!(text, golden, "prometheus exposition drifted from the golden contract");
}

#[test]
fn type_line_emitted_once_per_metric_family() {
    let mut snap = RegistrySnapshot::default();
    for node in ["1", "2", "3"] {
        snap.counters.insert(MetricKey::new("kera.rpc.calls", &[("node", node)]), 1);
    }
    let text = snap.to_prometheus();
    assert_eq!(
        text.matches("# TYPE kera_rpc_calls counter").count(),
        1,
        "one TYPE line per family, not per series: {text}"
    );
}

/// Cumulative bucket lines must be non-decreasing and end exactly at the
/// `+Inf` bucket, which must equal `_count` — checked on a real
/// registry-built histogram including the top (le = u64::MAX) bucket.
#[test]
fn histogram_buckets_are_cumulative_and_monotone() {
    let reg = MetricsRegistry::with_base_labels(&[("cluster", "gold\"en")]);
    let h = reg.histogram("kera.trace.stage", &[("stage", "flush")]);
    for ns in [1u64, 3, 100, 100, 5_000, 1 << 40, u64::MAX] {
        h.record_ns(ns);
    }
    let text = reg.snapshot().to_prometheus();

    let mut cumulative = Vec::new();
    let mut inf = None;
    let mut count = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("kera_trace_stage_bucket{") {
            let value: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
            if rest.contains("le=\"+Inf\"") {
                inf = Some(value);
            } else {
                cumulative.push(value);
            }
        } else if line.starts_with("kera_trace_stage_count{") {
            count = Some(line.rsplit(' ').next().unwrap().parse::<u64>().unwrap());
        }
    }
    assert!(!cumulative.is_empty(), "no bucket lines in: {text}");
    assert!(
        cumulative.windows(2).all(|w| w[0] <= w[1]),
        "buckets not monotone: {cumulative:?}"
    );
    assert_eq!(inf, Some(7), "+Inf bucket must equal total count");
    assert_eq!(count, Some(7));
    assert_eq!(*cumulative.last().unwrap(), 7, "top finite bucket covers u64::MAX waits");
    // The u64::MAX record lands in the final bucket, rendered with the
    // saturated upper bound rather than an overflowing (2<<63)-1.
    assert!(text.contains("le=\"18446744073709551615\""), "{text}");
    // Base labels escape like any other label value.
    assert!(text.contains("cluster=\"gold\\\"en\""));
}
