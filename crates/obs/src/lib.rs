//! Observability for the KerA reproduction: per-node metrics registry,
//! causal tracing and a flight recorder.
//!
//! One [`NodeObs`] per simulated node bundles the three pieces:
//!
//! - a [`MetricsRegistry`] of named counters/gauges/histograms
//!   (`kera.<subsystem>.<name>`, labelled at least with `node`);
//! - trace/span recording: [`NodeObs::root_span`]/[`NodeObs::span`]
//!   return RAII [`Span`]s that, on drop, feed the per-stage latency
//!   histograms (`kera.trace.stage{stage=...}`) and the flight recorder;
//! - a [`FlightRecorder`] ring of recent events, dumpable on panic or
//!   chaos failure.
//!
//! With `enabled == false` every tracing entry point returns inert
//! values: no ids are allocated, no events recorded, and the only
//! residual cost is a branch. Metrics registered through the registry
//! keep working either way (they are plain relaxed atomics, exactly what
//! the pre-registry ad-hoc counters cost).

pub mod flightrec;
pub mod registry;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kera_common::metrics::LatencyHistogram;

pub use flightrec::{
    dump_all, install_panic_hook, register_for_dump, EventRecord, FlightRecorder,
};
pub use registry::{Gauge, MetricKey, MetricsRegistry, RegistrySnapshot};
pub use trace::{current, enter, ContextGuard, Stage, TraceContext, STAGE_COUNT};

/// One node's observability handle.
pub struct NodeObs {
    node: u32,
    enabled: bool,
    registry: MetricsRegistry,
    recorder: Arc<FlightRecorder>,
    /// Per-stage latency histograms, indexed by `Stage as u8 - 1`; also
    /// registered as `kera.trace.stage{stage=<name>}`.
    stages: [Arc<LatencyHistogram>; STAGE_COUNT],
    /// Span/trace id allocator; ids embed the node so they are unique
    /// across an in-process cluster.
    next_id: AtomicU64,
}

impl NodeObs {
    pub fn new(node: u32, enabled: bool) -> Arc<NodeObs> {
        let registry = MetricsRegistry::new(node);
        let stages = std::array::from_fn(|i| {
            registry.histogram("kera.trace.stage", &[("stage", Stage::ALL[i].name())])
        });
        Arc::new(NodeObs {
            node,
            enabled,
            registry,
            recorder: FlightRecorder::new(node, flightrec::DEFAULT_CAPACITY),
            stages,
            next_id: AtomicU64::new(1),
        })
    }

    /// A handle that records nothing (observability off).
    pub fn disabled(node: u32) -> Arc<NodeObs> {
        Self::new(node, false)
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn node(&self) -> u32 {
        self.node
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Latency histogram of one pipeline stage.
    pub fn stage_histogram(&self, stage: Stage) -> &Arc<LatencyHistogram> {
        &self.stages[stage as usize - 1]
    }

    #[inline]
    fn next_id(&self) -> u64 {
        // Node in the high bits (offset so id 0 still yields nonzero),
        // per-node counter below: unique across the cluster.
        (u64::from(self.node) + 1) << 40 | self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a new trace rooted at a new span (inert when disabled).
    pub fn root_span(self: &Arc<Self>, stage: Stage) -> Span {
        if !self.enabled {
            return Span::inert();
        }
        let trace_id = self.next_id();
        self.span_inner(stage, trace_id, 0)
    }

    /// A child span of `parent`; inert when disabled or `parent` is
    /// untraced.
    pub fn span(self: &Arc<Self>, stage: Stage, parent: TraceContext) -> Span {
        if !self.enabled || parent.is_none() {
            return Span::inert();
        }
        self.span_inner(stage, parent.trace_id, parent.span_id)
    }

    /// A child of the calling thread's current context, or a new root if
    /// there is none. What `RpcClient::call` uses.
    pub fn span_or_root(self: &Arc<Self>, stage: Stage) -> Span {
        let cur = trace::current();
        if cur.is_some() {
            self.span(stage, cur)
        } else {
            self.root_span(stage)
        }
    }

    fn span_inner(self: &Arc<Self>, stage: Stage, trace_id: u64, parent: u64) -> Span {
        Span {
            obs: Some(Arc::clone(self)),
            trace_id,
            span_id: self.next_id(),
            parent,
            stage,
            opcode: 0,
            aux: 0,
            start_ns: flightrec::now_ns(),
        }
    }

    /// Records an instant event (duration 0) under `parent`. No-op when
    /// disabled or untraced.
    pub fn event(&self, stage: Stage, parent: TraceContext, opcode: u8, aux: u64) {
        if !self.enabled || parent.is_none() {
            return;
        }
        self.recorder.record(&EventRecord {
            time_ns: flightrec::now_ns(),
            dur_ns: 0,
            trace_id: parent.trace_id,
            span_id: self.next_id(),
            parent_span_id: parent.span_id,
            node: self.node,
            stage: stage as u8,
            opcode,
            aux,
        });
    }
}

/// An in-flight span; recording happens on drop (or [`Span::finish`]).
/// Inert spans (observability off, untraced parent) cost a branch.
pub struct Span {
    obs: Option<Arc<NodeObs>>,
    trace_id: u64,
    span_id: u64,
    parent: u64,
    stage: Stage,
    opcode: u8,
    aux: u64,
    start_ns: u64,
}

impl Span {
    /// A span that records nothing.
    pub fn inert() -> Span {
        Span {
            obs: None,
            trace_id: 0,
            span_id: 0,
            parent: 0,
            stage: Stage::RpcCall,
            opcode: 0,
            aux: 0,
            start_ns: 0,
        }
    }

    #[inline]
    pub fn is_recording(&self) -> bool {
        self.obs.is_some()
    }

    /// The context children of this span should use as their parent
    /// ([`TraceContext::NONE`] for inert spans).
    #[inline]
    pub fn context(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: self.span_id }
    }

    #[inline]
    pub fn set_opcode(&mut self, opcode: u8) {
        self.opcode = opcode;
    }

    #[inline]
    pub fn set_aux(&mut self, aux: u64) {
        self.aux = aux;
    }

    /// Explicit end (drop does the same).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(obs) = self.obs.take() else { return };
        let dur_ns = flightrec::now_ns().saturating_sub(self.start_ns);
        obs.stages[self.stage as usize - 1].record_ns(dur_ns);
        obs.recorder.record(&EventRecord {
            time_ns: self.start_ns,
            dur_ns,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span_id: self.parent,
            node: obs.node,
            stage: self.stage as u8,
            opcode: self.opcode,
            aux: self.aux,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = NodeObs::disabled(1);
        assert!(!obs.enabled());
        let span = obs.root_span(Stage::Append);
        assert!(!span.is_recording());
        assert!(span.context().is_none());
        drop(span);
        obs.event(Stage::RpcRetry, TraceContext { trace_id: 1, span_id: 1 }, 0, 0);
        assert_eq!(obs.recorder().recorded(), 0);
        assert_eq!(obs.stage_histogram(Stage::Append).count(), 0);
    }

    #[test]
    fn root_and_child_spans_link() {
        let obs = NodeObs::new(5, true);
        let root = obs.root_span(Stage::RpcCall);
        let root_ctx = root.context();
        assert!(root_ctx.is_some());
        let child = obs.span(Stage::Append, root_ctx);
        let child_ctx = child.context();
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_ne!(child_ctx.span_id, root_ctx.span_id);
        drop(child);
        drop(root);

        let events = obs.recorder().read();
        assert_eq!(events.len(), 2);
        let root_ev = events.iter().find(|e| e.span_id == root_ctx.span_id).unwrap();
        let child_ev = events.iter().find(|e| e.span_id == child_ctx.span_id).unwrap();
        assert_eq!(root_ev.parent_span_id, 0);
        assert_eq!(child_ev.parent_span_id, root_ctx.span_id);
        assert_eq!(child_ev.stage(), Some(Stage::Append));
        assert_eq!(obs.stage_histogram(Stage::Append).count(), 1);
        assert_eq!(obs.stage_histogram(Stage::RpcCall).count(), 1);
    }

    #[test]
    fn span_of_untraced_parent_is_inert() {
        let obs = NodeObs::new(2, true);
        let span = obs.span(Stage::Append, TraceContext::NONE);
        assert!(!span.is_recording());
    }

    #[test]
    fn span_or_root_uses_thread_context() {
        let obs = NodeObs::new(3, true);
        let outer = obs.root_span(Stage::RpcServe);
        {
            let _g = trace::enter(outer.context());
            let inner = obs.span_or_root(Stage::RpcCall);
            assert_eq!(inner.context().trace_id, outer.context().trace_id);
        }
        let fresh = obs.span_or_root(Stage::RpcCall);
        assert_ne!(fresh.context().trace_id, outer.context().trace_id);
    }

    #[test]
    fn events_record_into_ring() {
        let obs = NodeObs::new(4, true);
        let root = obs.root_span(Stage::RpcCall);
        obs.event(Stage::RpcDedupHit, root.context(), 3, 42);
        let events = obs.recorder().read();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_ns, 0);
        assert_eq!(events[0].aux, 42);
        assert_eq!(events[0].parent_span_id, root.context().span_id);
    }

    #[test]
    fn ids_are_unique_across_nodes() {
        let a = NodeObs::new(1, true);
        let b = NodeObs::new(2, true);
        let sa = a.root_span(Stage::RpcCall);
        let sb = b.root_span(Stage::RpcCall);
        assert_ne!(sa.context().trace_id, sb.context().trace_id);
        assert_ne!(sa.context().span_id, sb.context().span_id);
    }

    #[test]
    fn stage_histograms_appear_in_registry() {
        let obs = NodeObs::new(6, true);
        obs.root_span(Stage::Flush).finish();
        let snap = obs.registry().snapshot();
        let hs = snap.histogram_sum("kera.trace.stage", &[("stage", "flush")]);
        assert_eq!(hs.count, 1);
    }
}
