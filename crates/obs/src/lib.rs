//! Observability for the KerA reproduction: per-node metrics registry,
//! causal tracing and a flight recorder.
//!
//! One [`NodeObs`] per simulated node bundles the three pieces:
//!
//! - a [`MetricsRegistry`] of named counters/gauges/histograms
//!   (`kera.<subsystem>.<name>`, labelled at least with `node`);
//! - trace/span recording: [`NodeObs::root_span`]/[`NodeObs::span`]
//!   return RAII [`Span`]s that, on drop, feed the per-stage latency
//!   histograms (`kera.trace.stage{stage=...}`) and the flight recorder;
//! - a [`FlightRecorder`] ring of recent events, dumpable on panic or
//!   chaos failure.
//!
//! With `enabled == false` every tracing entry point returns inert
//! values: no ids are allocated, no events recorded, and the only
//! residual cost is a branch. Metrics registered through the registry
//! keep working either way (they are plain relaxed atomics, exactly what
//! the pre-registry ad-hoc counters cost).

pub mod flightrec;
pub mod registry;
pub mod slowtrace;
pub mod trace;
pub mod watchdog;

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use kera_common::metrics::{HistogramSnapshot, LatencyHistogram};

pub use flightrec::{
    dump_all, dump_run_dir, install_panic_hook, register_for_dump, EventRecord, FlightRecorder,
};
pub use registry::{Gauge, MetricKey, MetricsRegistry, RegistrySnapshot};
pub use slowtrace::{SlowSpan, SlowTraceStore};
pub use trace::{current, enter, ContextGuard, Stage, TraceContext, STAGE_COUNT};
pub use watchdog::{watchdog_ms_from_env, Watchdog};

/// One node's observability handle.
pub struct NodeObs {
    node: u32,
    enabled: bool,
    registry: MetricsRegistry,
    recorder: Arc<FlightRecorder>,
    /// Per-stage latency histograms, indexed by `Stage as u8 - 1`; also
    /// registered as `kera.trace.stage{stage=<name>}`.
    stages: [Arc<LatencyHistogram>; STAGE_COUNT],
    /// Span/trace id allocator; ids embed the node so they are unique
    /// across an in-process cluster.
    next_id: AtomicU64,
    /// Tail-sampled slowest/errored spans per stage (introspection).
    slow: SlowTraceStore,
    /// Monotone progress heartbeat: subsystems bump it whenever real work
    /// completes (append accepted, segment shipped, entry committed). The
    /// stall watchdog fires when this stops moving while `inflight > 0`.
    progress: AtomicU64,
    /// RPCs currently being served on this node.
    inflight: AtomicI64,
    /// Armed watchdog threshold in ms (0 = no watchdog), for introspection.
    watchdog_ms: AtomicU32,
}

impl NodeObs {
    pub fn new(node: u32, enabled: bool) -> Arc<NodeObs> {
        let registry = MetricsRegistry::new(node);
        let stages = std::array::from_fn(|i| {
            registry.histogram("kera.trace.stage", &[("stage", Stage::ALL[i].name())])
        });
        if enabled {
            // Lock wait-time accounting is process-global in the
            // parking_lot shim; the first enabled node arms it.
            parking_lot::set_contention_timing(true);
        }
        Arc::new(NodeObs {
            node,
            enabled,
            registry,
            recorder: FlightRecorder::new(node, flightrec::DEFAULT_CAPACITY),
            stages,
            next_id: AtomicU64::new(1),
            slow: SlowTraceStore::new(slowtrace::capacity_from_env()),
            progress: AtomicU64::new(0),
            inflight: AtomicI64::new(0),
            watchdog_ms: AtomicU32::new(0),
        })
    }

    /// A handle that records nothing (observability off).
    pub fn disabled(node: u32) -> Arc<NodeObs> {
        Self::new(node, false)
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn node(&self) -> u32 {
        self.node
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Latency histogram of one pipeline stage.
    pub fn stage_histogram(&self, stage: Stage) -> &Arc<LatencyHistogram> {
        &self.stages[stage as usize - 1]
    }

    /// The node's tail-sampled slow/errored span store.
    pub fn slow_traces(&self) -> &SlowTraceStore {
        &self.slow
    }

    /// Signals forward progress (work item completed). One relaxed add
    /// when observability is on, one branch when off.
    #[inline]
    pub fn bump_progress(&self) {
        if self.enabled {
            self.progress.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current progress heartbeat value.
    pub fn progress_counter(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Marks one RPC as being served (paired with [`inflight_exit`]).
    ///
    /// [`inflight_exit`]: NodeObs::inflight_exit
    #[inline]
    pub fn inflight_enter(&self) {
        if self.enabled {
            self.inflight.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn inflight_exit(&self) {
        if self.enabled {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// RPCs currently being served (clamped to ≥ 0).
    pub fn inflight(&self) -> u32 {
        self.inflight.load(Ordering::Relaxed).max(0) as u32
    }

    /// Records the armed watchdog threshold so introspection can report
    /// it (0 = no watchdog on this node).
    pub fn set_watchdog_ms(&self, ms: u32) {
        self.watchdog_ms.store(ms, Ordering::Relaxed);
    }

    pub fn watchdog_ms(&self) -> u32 {
        self.watchdog_ms.load(Ordering::Relaxed)
    }

    #[inline]
    fn next_id(&self) -> u64 {
        // Node in the high bits (offset so id 0 still yields nonzero),
        // per-node counter below: unique across the cluster.
        (u64::from(self.node) + 1) << 40 | self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a new trace rooted at a new span (inert when disabled).
    pub fn root_span(self: &Arc<Self>, stage: Stage) -> Span {
        if !self.enabled {
            return Span::inert();
        }
        let trace_id = self.next_id();
        self.span_inner(stage, trace_id, 0)
    }

    /// A child span of `parent`; inert when disabled or `parent` is
    /// untraced.
    pub fn span(self: &Arc<Self>, stage: Stage, parent: TraceContext) -> Span {
        if !self.enabled || parent.is_none() {
            return Span::inert();
        }
        self.span_inner(stage, parent.trace_id, parent.span_id)
    }

    /// A child of the calling thread's current context, or a new root if
    /// there is none. What `RpcClient::call` uses.
    pub fn span_or_root(self: &Arc<Self>, stage: Stage) -> Span {
        let cur = trace::current();
        if cur.is_some() {
            self.span(stage, cur)
        } else {
            self.root_span(stage)
        }
    }

    fn span_inner(self: &Arc<Self>, stage: Stage, trace_id: u64, parent: u64) -> Span {
        Span {
            obs: Some(Arc::clone(self)),
            trace_id,
            span_id: self.next_id(),
            parent,
            stage,
            opcode: 0,
            aux: 0,
            start_ns: flightrec::now_ns(),
            error: false,
        }
    }

    /// Records an instant event (duration 0) under `parent`. No-op when
    /// disabled or untraced.
    pub fn event(&self, stage: Stage, parent: TraceContext, opcode: u8, aux: u64) {
        if !self.enabled || parent.is_none() {
            return;
        }
        self.recorder.record(&EventRecord {
            time_ns: flightrec::now_ns(),
            dur_ns: 0,
            trace_id: parent.trace_id,
            span_id: self.next_id(),
            parent_span_id: parent.span_id,
            node: self.node,
            stage: stage as u8,
            opcode,
            aux,
        });
    }
}

/// An in-flight span; recording happens on drop (or [`Span::finish`]).
/// Inert spans (observability off, untraced parent) cost a branch.
pub struct Span {
    obs: Option<Arc<NodeObs>>,
    trace_id: u64,
    span_id: u64,
    parent: u64,
    stage: Stage,
    opcode: u8,
    aux: u64,
    start_ns: u64,
    error: bool,
}

impl Span {
    /// A span that records nothing.
    pub fn inert() -> Span {
        Span {
            obs: None,
            trace_id: 0,
            span_id: 0,
            parent: 0,
            stage: Stage::RpcCall,
            opcode: 0,
            aux: 0,
            start_ns: 0,
            error: false,
        }
    }

    #[inline]
    pub fn is_recording(&self) -> bool {
        self.obs.is_some()
    }

    /// The context children of this span should use as their parent
    /// ([`TraceContext::NONE`] for inert spans).
    #[inline]
    pub fn context(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: self.span_id }
    }

    #[inline]
    pub fn set_opcode(&mut self, opcode: u8) {
        self.opcode = opcode;
    }

    #[inline]
    pub fn set_aux(&mut self, aux: u64) {
        self.aux = aux;
    }

    /// Marks the span as errored: it is force-sampled into the node's
    /// slow-trace store regardless of duration.
    #[inline]
    pub fn set_error(&mut self) {
        self.error = true;
    }

    /// Explicit end (drop does the same).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(obs) = self.obs.take() else { return };
        let dur_ns = flightrec::now_ns().saturating_sub(self.start_ns);
        obs.stages[self.stage as usize - 1].record_ns(dur_ns);
        let record = EventRecord {
            time_ns: self.start_ns,
            dur_ns,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span_id: self.parent,
            node: obs.node,
            stage: self.stage as u8,
            opcode: self.opcode,
            aux: self.aux,
        };
        obs.recorder.record(&record);
        obs.slow.offer(&record, self.error);
    }
}

/// Process-wide lock contention as a snapshot: per-class wait-time
/// histograms (`kera.lock.wait{class=...}`, shim buckets share the
/// `LatencyHistogram` convention) plus contended-acquisition counters
/// (`kera.lock.contended{class=...}`). The underlying table is global to
/// the process, not per node — merge this once per scrape, not once per
/// node, or classes double-count.
pub fn lock_contention_snapshot() -> RegistrySnapshot {
    let mut snap = RegistrySnapshot::default();
    for c in parking_lot::contention_snapshot() {
        let labels = [("class", c.class)];
        snap.counters.insert(MetricKey::new("kera.lock.contended", &labels), c.contended);
        snap.histograms.insert(
            MetricKey::new("kera.lock.wait", &labels),
            HistogramSnapshot {
                buckets: c.buckets,
                count: c.contended,
                sum_ns: c.wait_sum_ns,
                max_ns: c.wait_max_ns,
            },
        );
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = NodeObs::disabled(1);
        assert!(!obs.enabled());
        let span = obs.root_span(Stage::Append);
        assert!(!span.is_recording());
        assert!(span.context().is_none());
        drop(span);
        obs.event(Stage::RpcRetry, TraceContext { trace_id: 1, span_id: 1 }, 0, 0);
        assert_eq!(obs.recorder().recorded(), 0);
        assert_eq!(obs.stage_histogram(Stage::Append).count(), 0);
    }

    #[test]
    fn root_and_child_spans_link() {
        let obs = NodeObs::new(5, true);
        let root = obs.root_span(Stage::RpcCall);
        let root_ctx = root.context();
        assert!(root_ctx.is_some());
        let child = obs.span(Stage::Append, root_ctx);
        let child_ctx = child.context();
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_ne!(child_ctx.span_id, root_ctx.span_id);
        drop(child);
        drop(root);

        let events = obs.recorder().read();
        assert_eq!(events.len(), 2);
        let root_ev = events.iter().find(|e| e.span_id == root_ctx.span_id).unwrap();
        let child_ev = events.iter().find(|e| e.span_id == child_ctx.span_id).unwrap();
        assert_eq!(root_ev.parent_span_id, 0);
        assert_eq!(child_ev.parent_span_id, root_ctx.span_id);
        assert_eq!(child_ev.stage(), Some(Stage::Append));
        assert_eq!(obs.stage_histogram(Stage::Append).count(), 1);
        assert_eq!(obs.stage_histogram(Stage::RpcCall).count(), 1);
    }

    #[test]
    fn span_of_untraced_parent_is_inert() {
        let obs = NodeObs::new(2, true);
        let span = obs.span(Stage::Append, TraceContext::NONE);
        assert!(!span.is_recording());
    }

    #[test]
    fn span_or_root_uses_thread_context() {
        let obs = NodeObs::new(3, true);
        let outer = obs.root_span(Stage::RpcServe);
        {
            let _g = trace::enter(outer.context());
            let inner = obs.span_or_root(Stage::RpcCall);
            assert_eq!(inner.context().trace_id, outer.context().trace_id);
        }
        let fresh = obs.span_or_root(Stage::RpcCall);
        assert_ne!(fresh.context().trace_id, outer.context().trace_id);
    }

    #[test]
    fn events_record_into_ring() {
        let obs = NodeObs::new(4, true);
        let root = obs.root_span(Stage::RpcCall);
        obs.event(Stage::RpcDedupHit, root.context(), 3, 42);
        let events = obs.recorder().read();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_ns, 0);
        assert_eq!(events[0].aux, 42);
        assert_eq!(events[0].parent_span_id, root.context().span_id);
    }

    #[test]
    fn ids_are_unique_across_nodes() {
        let a = NodeObs::new(1, true);
        let b = NodeObs::new(2, true);
        let sa = a.root_span(Stage::RpcCall);
        let sb = b.root_span(Stage::RpcCall);
        assert_ne!(sa.context().trace_id, sb.context().trace_id);
        assert_ne!(sa.context().span_id, sb.context().span_id);
    }

    #[test]
    fn stage_histograms_appear_in_registry() {
        let obs = NodeObs::new(6, true);
        obs.root_span(Stage::Flush).finish();
        let snap = obs.registry().snapshot();
        let hs = snap.histogram_sum("kera.trace.stage", &[("stage", "flush")]);
        assert_eq!(hs.count, 1);
    }
}
