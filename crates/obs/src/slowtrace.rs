//! Tail-sampled slow traces: each node retains the N slowest (plus
//! every errored) spans per stage, so one introspection RPC can explain
//! "why was p99 bad" without shipping the whole flight-recorder ring.
//!
//! Sampling is decided at span drop. The hot path pays one relaxed load
//! per finished span: a per-stage admission threshold (the smallest
//! duration currently retained once the stage is full) filters out the
//! fast majority before any lock is taken. Only candidate spans — slower
//! than the threshold, or errored — take the per-stage `obs.slowtrace`
//! mutex, which therefore sits far from the data path.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::flightrec::{EventRecord, FlightRecorder};
use crate::trace::{Stage, STAGE_COUNT};

/// Default retained spans per stage.
pub const DEFAULT_PER_STAGE: usize = 4;

/// Per-stage capacity from `KERA_SLOW_TRACES` (clamped to 1..=64),
/// defaulting to [`DEFAULT_PER_STAGE`].
pub fn capacity_from_env() -> usize {
    std::env::var("KERA_SLOW_TRACES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(1, 64))
        .unwrap_or(DEFAULT_PER_STAGE)
}

/// One sampled span: the flight-recorder event plus the error verdict.
#[derive(Clone, Copy, Debug)]
pub struct SlowSpan {
    pub record: EventRecord,
    pub error: bool,
}

impl SlowSpan {
    /// Ranking key: errors outrank any duration; among equals, slower
    /// wins.
    fn key(&self) -> (bool, u64) {
        (self.error, self.record.dur_ns)
    }
}

/// Bounded top-N store of slow/errored spans, one bucket per stage.
pub struct SlowTraceStore {
    /// Retained spans per stage, unordered (capacity-bounded).
    stages: [Mutex<Vec<SlowSpan>>; STAGE_COUNT],
    /// Admission threshold per stage: smallest retained duration once
    /// the stage is at capacity, 0 while it still has room. Read on
    /// every span drop; written only under the stage mutex.
    thresholds: [AtomicU64; STAGE_COUNT],
    capacity: usize,
}

impl SlowTraceStore {
    pub fn new(capacity: usize) -> SlowTraceStore {
        SlowTraceStore {
            stages: std::array::from_fn(|_| Mutex::named("obs.slowtrace", Vec::new())),
            thresholds: std::array::from_fn(|_| AtomicU64::new(0)),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity_per_stage(&self) -> usize {
        self.capacity
    }

    /// Offers a finished span. The common case (fast, no error) returns
    /// after one relaxed load.
    #[inline]
    pub fn offer(&self, record: &EventRecord, error: bool) {
        let Some(idx) = (record.stage as usize).checked_sub(1) else { return };
        if idx >= STAGE_COUNT {
            return;
        }
        if !error && record.dur_ns < self.thresholds[idx].load(Ordering::Relaxed) {
            return;
        }
        self.offer_slow(idx, SlowSpan { record: *record, error });
    }

    #[cold]
    fn offer_slow(&self, idx: usize, span: SlowSpan) {
        let mut retained = self.stages[idx].lock();
        if retained.len() < self.capacity {
            retained.push(span);
        } else {
            // Evict the lowest-ranked entry if the candidate outranks it.
            let (evict, _) = retained
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.key())
                .expect("store at capacity is non-empty");
            if retained[evict].key() >= span.key() {
                return;
            }
            retained[evict] = span;
        }
        if retained.len() >= self.capacity {
            let min_dur =
                retained.iter().map(|s| s.record.dur_ns).min().unwrap_or(0);
            self.thresholds[idx].store(min_dur, Ordering::Relaxed);
        }
    }

    /// Every retained span, slowest first within each stage.
    pub fn snapshot(&self) -> Vec<SlowSpan> {
        let mut out = Vec::new();
        for stage in &self.stages {
            let mut spans = stage.lock().clone();
            spans.sort_by_key(|s| std::cmp::Reverse(s.key()));
            out.extend(spans);
        }
        out
    }

    /// Total retained spans across stages.
    pub fn retained(&self) -> usize {
        self.stages.iter().map(|s| s.lock().len()).sum()
    }

    /// Renders the retained spans as a JSON array of span *trees*: each
    /// sampled span carries every event of its trace (pulled from the
    /// flight-recorder ring, parent links intact), so a scraper can
    /// reconstruct the causal tree without further RPCs. Events that
    /// have already been lapped out of the ring simply shrink the tree —
    /// the sampled root span itself is always present.
    pub fn to_json(&self, recorder: &FlightRecorder) -> String {
        let sampled = self.snapshot();
        let ring = recorder.read();
        let mut s = String::from("[");
        for (i, span) in sampled.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let r = &span.record;
            let stage = r.stage().map(Stage::name).unwrap_or("unknown");
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"error\":{},\"dur_ns\":{},\"time_ns\":{},\
                 \"trace_id\":{},\"span_id\":{},\"parent_span_id\":{},\"node\":{},\
                 \"opcode\":{},\"aux\":{},\"tree\":[",
                stage,
                span.error,
                r.dur_ns,
                r.time_ns,
                r.trace_id,
                r.span_id,
                r.parent_span_id,
                r.node,
                r.opcode,
                r.aux,
            ));
            let mut first = true;
            let mut root_in_ring = false;
            for e in ring.iter().filter(|e| e.trace_id == r.trace_id) {
                root_in_ring |= e.span_id == r.span_id;
                if !first {
                    s.push(',');
                }
                first = false;
                push_event(&mut s, e);
            }
            if !root_in_ring {
                // The sampled span was lapped out of the ring; keep the
                // tree self-contained by re-adding it.
                if !first {
                    s.push(',');
                }
                push_event(&mut s, r);
            }
            s.push_str("]}");
        }
        s.push(']');
        s
    }
}

fn push_event(s: &mut String, e: &EventRecord) {
    let stage = e.stage().map(Stage::name).unwrap_or("unknown");
    s.push_str(&format!(
        "{{\"time_ns\":{},\"dur_ns\":{},\"span_id\":{},\"parent_span_id\":{},\
         \"node\":{},\"stage\":\"{}\",\"opcode\":{},\"aux\":{}}}",
        e.time_ns, e.dur_ns, e.span_id, e.parent_span_id, e.node, stage, e.opcode, e.aux,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flightrec::now_ns;

    fn rec(stage: Stage, dur_ns: u64, span: u64) -> EventRecord {
        EventRecord {
            time_ns: now_ns(),
            dur_ns,
            trace_id: span,
            span_id: span,
            parent_span_id: 0,
            node: 1,
            stage: stage as u8,
            opcode: 0,
            aux: 0,
        }
    }

    #[test]
    fn retains_the_slowest_per_stage() {
        let store = SlowTraceStore::new(2);
        for (i, dur) in [100u64, 900, 50, 700, 300].into_iter().enumerate() {
            store.offer(&rec(Stage::Append, dur, i as u64 + 1), false);
        }
        let spans: Vec<u64> = store.snapshot().iter().map(|s| s.record.dur_ns).collect();
        assert_eq!(spans, vec![900, 700]);
        // The admission threshold now rejects faster spans lock-free.
        assert_eq!(store.thresholds[Stage::Append as usize - 1].load(Ordering::Relaxed), 700);
    }

    #[test]
    fn errors_outrank_slow_spans() {
        let store = SlowTraceStore::new(2);
        store.offer(&rec(Stage::RpcServe, 5_000, 1), false);
        store.offer(&rec(Stage::RpcServe, 4_000, 2), false);
        // A fast but errored span evicts the slowest non-error entry.
        store.offer(&rec(Stage::RpcServe, 10, 3), true);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|s| s.error && s.record.span_id == 3));
        assert!(snap.iter().any(|s| s.record.dur_ns == 5_000));
    }

    #[test]
    fn stages_do_not_share_capacity() {
        let store = SlowTraceStore::new(1);
        store.offer(&rec(Stage::Append, 100, 1), false);
        store.offer(&rec(Stage::Flush, 100, 2), false);
        assert_eq!(store.retained(), 2);
    }

    #[test]
    fn out_of_range_stage_is_ignored() {
        let store = SlowTraceStore::new(2);
        let mut bad = rec(Stage::Append, 100, 1);
        bad.stage = 0;
        store.offer(&bad, false);
        bad.stage = 200;
        store.offer(&bad, true);
        assert_eq!(store.retained(), 0);
    }

    #[test]
    fn json_trees_pull_trace_events_from_the_ring() {
        let recorder = FlightRecorder::new(1, 64);
        let root = rec(Stage::RpcServe, 9_000, 7);
        let mut child = rec(Stage::Append, 6_000, 8);
        child.trace_id = 7;
        child.parent_span_id = 7;
        recorder.record(&root);
        recorder.record(&child);

        let store = SlowTraceStore::new(2);
        store.offer(&root, false);
        let json = store.to_json(&recorder);
        assert!(json.starts_with('['), "json: {json}");
        assert!(json.contains("\"stage\":\"rpc_serve\""));
        // The tree contains both the sampled root and its child.
        assert!(json.contains("\"span_id\":7"));
        assert!(json.contains("\"parent_span_id\":7"));
        assert!(json.contains("\"stage\":\"append\""));
    }

    #[test]
    fn sampled_span_lapped_out_of_ring_stays_in_tree() {
        let recorder = FlightRecorder::new(1, 16);
        let root = rec(Stage::Flush, 9_000, 42);
        let store = SlowTraceStore::new(1);
        store.offer(&root, false);
        // Never recorded into the ring: the tree re-adds the root.
        let json = store.to_json(&recorder);
        assert!(json.contains("\"span_id\":42"));
    }
}
