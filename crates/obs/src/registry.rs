//! The per-node metrics registry: named counters, gauges and histograms
//! with labels, snapshot/delta semantics and JSON + Prometheus-text
//! export.
//!
//! Registration (`counter()`/`gauge()`/`histogram()`) is get-or-create
//! under a mutex and meant for startup: callers cache the returned `Arc`
//! and update it lock-free on the hot path. Metric names follow
//! `kera.<subsystem>.<name>` (DESIGN.md §9).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use kera_common::metrics::{Counter, HistogramSnapshot, LatencyHistogram};
use parking_lot::Mutex;

/// A settable signed value (queue depths, open segments, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Self { value: AtomicI64::new(0) }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A metric's identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// `name{k="v",...}` (Prometheus-style identity).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut s = self.name.clone();
        s.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{k}=\"{}\"", escape(v));
        }
        s.push('}');
        s
    }

    /// True if every pair of `filter` appears in this key's labels.
    pub fn matches(&self, name: &str, filter: &[(&str, &str)]) -> bool {
        self.name == name
            && filter
                .iter()
                .all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// One node's metrics. Every metric automatically carries the registry's
/// base labels (at least `node`).
pub struct MetricsRegistry {
    base_labels: Vec<(String, String)>,
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<LatencyHistogram>>>,
}

impl MetricsRegistry {
    pub fn new(node: u32) -> MetricsRegistry {
        Self::with_base_labels(&[("node", &node.to_string())])
    }

    pub fn with_base_labels(base: &[(&str, &str)]) -> MetricsRegistry {
        MetricsRegistry {
            base_labels: base.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            counters: Mutex::named("obs.registry", BTreeMap::new()),
            gauges: Mutex::named("obs.registry", BTreeMap::new()),
            histograms: Mutex::named("obs.registry", BTreeMap::new()),
        }
    }

    fn key(&self, name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut all: Vec<(String, String)> = self.base_labels.clone();
        for (k, v) in labels {
            all.push((k.to_string(), v.to_string()));
        }
        all.sort();
        MetricKey { name: name.to_string(), labels: all }
    }

    /// Get-or-create; cache the `Arc`, don't call this on the hot path.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(self.key(name, labels))
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(self.key(name, labels))
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(self.key(name, labels))
                .or_insert_with(|| Arc::new(LatencyHistogram::new())),
        )
    }

    /// Point-in-time copy of every registered metric.
    ///
    /// One map lock at a time: the three maps share the `obs.registry`
    /// lock class, and same-class nesting is a lockdep violation — each
    /// guard must drop before the next is taken.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self.counters.lock().iter().map(|(k, c)| (k.clone(), c.get())).collect();
        let gauges = self.gauges.lock().iter().map(|(k, g)| (k.clone(), g.get())).collect();
        let histograms =
            self.histograms.lock().iter().map(|(k, h)| (k.clone(), h.snapshot())).collect();
        RegistrySnapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of a registry (or a merge of several).
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<MetricKey, u64>,
    pub gauges: BTreeMap<MetricKey, i64>,
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// What changed since `prev`: counters and histogram contents are
    /// subtracted; gauges keep their current value (they are levels, not
    /// accumulations).
    pub fn delta_since(&self, prev: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (k.clone(), v.saturating_sub(prev.counters.get(k).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| match prev.histograms.get(k) {
                    Some(p) => (k.clone(), h.delta_since(p)),
                    None => (k.clone(), h.clone()),
                })
                .collect(),
        }
    }

    /// Unions another snapshot into this one: same-key counters sum,
    /// gauges sum, histograms merge. Per-node snapshots never collide
    /// (their keys carry the `node` label), so cluster-wide aggregation
    /// is a plain fold.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Sums every counter matching `name` + `filter` across labels.
    pub fn counter_sum(&self, name: &str, filter: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.matches(name, filter))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merges every histogram matching `name` + `filter` across labels.
    pub fn histogram_sum(&self, name: &str, filter: &[(&str, &str)]) -> HistogramSnapshot {
        let mut acc = HistogramSnapshot::empty();
        for (_, h) in self.histograms.iter().filter(|(k, _)| k.matches(name, filter)) {
            acc.merge(h);
        }
        acc
    }

    /// Renders the snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", escape(&k.render()), v);
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", escape(&k.render()), v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50_ns\":{},\
                 \"p99_ns\":{},\"mean_ns\":{:.1}}}",
                escape(&k.render()),
                h.count,
                h.sum_ns,
                h.max_ns,
                h.quantile_ns(0.50),
                h.quantile_ns(0.99),
                h.mean_ns(),
            );
        }
        s.push_str("}}");
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Dots in metric names become underscores; histograms emit
    /// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut last_name = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(&k.name);
            if name != last_name {
                let _ = writeln!(s, "# TYPE {name} counter");
                last_name = name.clone();
            }
            let _ = writeln!(s, "{}{} {}", name, prom_labels(&k.labels, None), v);
        }
        last_name.clear();
        for (k, v) in &self.gauges {
            let name = prom_name(&k.name);
            if name != last_name {
                let _ = writeln!(s, "# TYPE {name} gauge");
                last_name = name.clone();
            }
            let _ = writeln!(s, "{}{} {}", name, prom_labels(&k.labels, None), v);
        }
        last_name.clear();
        for (k, h) in &self.histograms {
            let name = prom_name(&k.name);
            if name != last_name {
                let _ = writeln!(s, "# TYPE {name} histogram");
                last_name = name.clone();
            }
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                let le = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                let _ = writeln!(
                    s,
                    "{}_bucket{} {}",
                    name,
                    prom_labels(&k.labels, Some(&le.to_string())),
                    cum
                );
            }
            let _ = writeln!(
                s,
                "{}_bucket{} {}",
                name,
                prom_labels(&k.labels, Some("+Inf")),
                h.count
            );
            let _ = writeln!(s, "{}_sum{} {}", name, prom_labels(&k.labels, None), h.sum_ns);
            let _ = writeln!(s, "{}_count{} {}", name, prom_labels(&k.labels, None), h.count);
        }
        s
    }
}

fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{}\"", escape(v));
    }
    if let Some(le) = le {
        if !first {
            s.push(',');
        }
        let _ = write!(s, "le=\"{le}\"");
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_by_name_and_labels() {
        let reg = MetricsRegistry::new(1);
        let a = reg.counter("kera.rpc.calls", &[]);
        let b = reg.counter("kera.rpc.calls", &[]);
        let c = reg.counter("kera.rpc.calls", &[("stream", "7")]);
        a.inc();
        b.inc();
        c.add(5);
        assert_eq!(a.get(), 2, "same key shares the counter");
        assert_eq!(c.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("kera.rpc.calls", &[]), 7);
        assert_eq!(snap.counter_sum("kera.rpc.calls", &[("stream", "7")]), 5);
        assert_eq!(snap.counter_sum("kera.rpc.calls", &[("node", "1")]), 7);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let reg = MetricsRegistry::new(2);
        let c = reg.counter("kera.broker.chunks_in", &[]);
        let h = reg.histogram("kera.trace.stage", &[("stage", "append")]);
        c.add(10);
        h.record_ns(100);
        let before = reg.snapshot();
        c.add(3);
        h.record_ns(200);
        h.record_ns(300);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.counter_sum("kera.broker.chunks_in", &[]), 3);
        let hs = delta.histogram_sum("kera.trace.stage", &[("stage", "append")]);
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum_ns, 500);
    }

    #[test]
    fn merge_aggregates_across_nodes() {
        let r1 = MetricsRegistry::new(1);
        let r2 = MetricsRegistry::new(2);
        r1.counter("kera.rpc.calls", &[]).add(4);
        r2.counter("kera.rpc.calls", &[]).add(6);
        r1.histogram("kera.trace.stage", &[("stage", "flush")]).record_ns(50);
        r2.histogram("kera.trace.stage", &[("stage", "flush")]).record_ns(70);
        let mut all = r1.snapshot();
        all.merge(&r2.snapshot());
        // Keys differ by node label, so the merged snapshot holds both.
        assert_eq!(all.counter_sum("kera.rpc.calls", &[]), 10);
        assert_eq!(all.counter_sum("kera.rpc.calls", &[("node", "2")]), 6);
        assert_eq!(all.histogram_sum("kera.trace.stage", &[("stage", "flush")]).count, 2);
    }

    #[test]
    fn json_export_contains_metrics() {
        let reg = MetricsRegistry::new(3);
        reg.counter("kera.rpc.calls", &[]).inc();
        reg.gauge("kera.vlog.queue_depth", &[]).set(4);
        reg.histogram("kera.trace.stage", &[("stage", "append")]).record_ns(100);
        let json = reg.snapshot().to_json();
        assert!(json.contains("kera.rpc.calls"));
        assert!(json.contains("node=\\\"3\\\""));
        assert!(json.contains("\"count\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn prometheus_export_format() {
        let reg = MetricsRegistry::new(4);
        reg.counter("kera.rpc.calls", &[]).add(2);
        reg.histogram("kera.trace.stage", &[("stage", "append")]).record_ns(100);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE kera_rpc_calls counter"));
        assert!(text.contains("kera_rpc_calls{node=\"4\"} 2"));
        assert!(text.contains("# TYPE kera_trace_stage histogram"));
        assert!(text.contains("le=\"127\"")); // 100ns lands in bucket 6
        assert!(text.contains("kera_trace_stage_count"));
        assert!(text.contains("le=\"+Inf\""));
    }
}
