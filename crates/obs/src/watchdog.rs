//! Per-node stall watchdog.
//!
//! A node that accepts RPCs but stops making progress (deadlock, frozen
//! thread, stuck replication ship) is the worst failure to triage after
//! the fact: by the time a human attaches, the interesting state is gone.
//! The watchdog samples two cheap signals the node already maintains —
//! the [`NodeObs`] progress heartbeat and the in-flight RPC gauge — and
//! when there is work in flight but the heartbeat has not moved for the
//! armed threshold, it automatically dumps the node's flight-recorder
//! ring and slow-trace store to a discriminated directory under the
//! results tree, then re-arms for the next stall.
//!
//! Armed via `KERA_WATCHDOG_MS` (see [`watchdog_ms_from_env`]); with
//! observability disabled the signals never move, so the watchdog stays
//! silent by construction.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// lint: allow(std-lock) — last_dump is read after the worker thread is
// joined or from tests; not worth a lock-order class.
use std::sync::{Arc, Mutex as StdMutex, Weak};
use std::time::{Duration, Instant};

use crate::flightrec::dump_run_dir;
use crate::NodeObs;

/// Watchdog threshold from `KERA_WATCHDOG_MS` (unset, unparsable or 0 =
/// no watchdog).
pub fn watchdog_ms_from_env() -> Option<u64> {
    std::env::var("KERA_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
}

/// A running stall watchdog for one node. Dropping it stops and joins
/// the monitor thread.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
    last_dump: Arc<StdMutex<Option<PathBuf>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog over `obs`: if `obs.inflight() > 0` and the
    /// progress heartbeat stays unchanged for `threshold`, the node's
    /// ring and slow traces are dumped under `dump_base` (routed through
    /// the discriminated `tmp/flightrec/` scheme). Fires at most once per
    /// stall; progress re-arms it.
    pub fn arm(obs: &Arc<NodeObs>, threshold: Duration, dump_base: &Path) -> Watchdog {
        obs.set_watchdog_ms(threshold.as_millis().min(u128::from(u32::MAX)) as u32);
        let stop = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicU64::new(0));
        let last_dump: Arc<StdMutex<Option<PathBuf>>> = Arc::new(StdMutex::new(None));
        let weak = Arc::downgrade(obs);
        let node = obs.node();
        let base = dump_base.to_path_buf();
        let tick = (threshold / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        let handle = {
            let stop = Arc::clone(&stop);
            let fired = Arc::clone(&fired);
            let last_dump = Arc::clone(&last_dump);
            std::thread::Builder::new()
                .name(format!("kera-watchdog-{node}"))
                .spawn(move || {
                    monitor(&weak, &stop, &fired, &last_dump, threshold, tick, &base)
                })
                .expect("spawn watchdog thread")
        };
        Watchdog { stop, fired, last_dump, handle: Some(handle) }
    }

    /// How many stalls have been dumped so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Path of the most recent stall dump, if any.
    pub fn last_dump(&self) -> Option<PathBuf> {
        self.last_dump.lock().ok().and_then(|g| g.clone())
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn monitor(
    weak: &Weak<NodeObs>,
    stop: &AtomicBool,
    fired: &AtomicU64,
    last_dump: &StdMutex<Option<PathBuf>>,
    threshold: Duration,
    tick: Duration,
    base: &Path,
) {
    let mut last_progress: Option<u64> = None;
    let mut stall_started: Option<Instant> = None;
    let mut fired_this_stall = false;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        let Some(obs) = weak.upgrade() else { return };
        let progress = obs.progress_counter();
        let stalled = obs.inflight() > 0 && last_progress == Some(progress);
        if stalled {
            let since = *stall_started.get_or_insert_with(Instant::now);
            if !fired_this_stall && since.elapsed() >= threshold {
                fired_this_stall = true;
                fired.fetch_add(1, Ordering::Relaxed);
                if let Some(path) = dump_stall(&obs, threshold, base) {
                    if let Ok(mut g) = last_dump.lock() {
                        *g = Some(path);
                    }
                }
            }
        } else {
            stall_started = None;
            fired_this_stall = false;
        }
        last_progress = Some(progress);
    }
}

/// Writes `watchdog-<node>.json` — health context, the full flight-
/// recorder ring, and the sampled slow span trees — into a fresh
/// discriminated dump directory. Returns the path, or `None` on I/O
/// failure (logged; a broken disk must not take the watchdog down).
fn dump_stall(obs: &Arc<NodeObs>, threshold: Duration, base: &Path) -> Option<PathBuf> {
    let dir = dump_run_dir(base, &format!("watchdog-node{}", obs.node()));
    let body = format!(
        "{{\"node\":{},\"reason\":\"stall\",\"watchdog_ms\":{},\"inflight\":{},\
         \"progress\":{},\"ring\":{},\"slow_traces\":{}}}",
        obs.node(),
        threshold.as_millis(),
        obs.inflight(),
        obs.progress_counter(),
        obs.recorder().to_json(),
        obs.slow_traces().to_json(obs.recorder()),
    );
    let path = dir.join(format!("watchdog-{}.json", obs.node()));
    let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body));
    match write {
        Ok(()) => {
            eprintln!(
                "[watchdog] node {}: no progress for {}ms with {} RPC(s) in flight -> {}",
                obs.node(),
                threshold.as_millis(),
                obs.inflight(),
                path.display(),
            );
            Some(path)
        }
        Err(e) => {
            eprintln!("[watchdog] node {}: stall dump failed: {}", obs.node(), e);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    fn temp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kera-watchdog-{tag}-{}", std::process::id()))
    }

    #[test]
    fn stall_with_inflight_work_dumps_ring_and_slow_traces() {
        let obs = NodeObs::new(42, true);
        // Populate the ring and the slow-trace store with one real span.
        obs.root_span(Stage::Append).finish();
        obs.inflight_enter();

        let base = temp_base("stall");
        let wd = Watchdog::arm(&obs, Duration::from_millis(40), &base);
        assert_eq!(obs.watchdog_ms(), 40);

        let deadline = Instant::now() + Duration::from_secs(5);
        while wd.fired() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(wd.fired() >= 1, "watchdog never fired on a stalled node");
        let path = wd.last_dump().expect("dump path recorded");
        assert!(path.starts_with(base.join("tmp").join("flightrec")));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"node\":42"));
        assert!(body.contains("\"reason\":\"stall\""));
        assert!(body.contains("\"ring\":{"), "ring missing: {body}");
        assert!(
            body.contains("\"slow_traces\":[{"),
            "expected at least one sampled slow span tree: {body}"
        );
        assert!(body.contains("\"stage\":\"append\""));

        // One stall fires once, not once per tick.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(wd.fired(), 1);

        // Progress re-arms; a new stall fires again.
        obs.bump_progress();
        let deadline = Instant::now() + Duration::from_secs(5);
        while wd.fired() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(wd.fired(), 2);

        obs.inflight_exit();
        drop(wd);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn idle_or_progressing_nodes_never_fire() {
        let obs = NodeObs::new(43, true);
        let base = temp_base("idle");
        let wd = Watchdog::arm(&obs, Duration::from_millis(30), &base);

        // Idle: nothing in flight.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(wd.fired(), 0);

        // Busy but progressing.
        obs.inflight_enter();
        for _ in 0..12 {
            obs.bump_progress();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(wd.fired(), 0, "progressing node must not trip the watchdog");
        obs.inflight_exit();
        drop(wd);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn disabled_obs_keeps_the_watchdog_silent() {
        let obs = NodeObs::disabled(44);
        let base = temp_base("disabled");
        let wd = Watchdog::arm(&obs, Duration::from_millis(20), &base);
        // inflight_enter is a no-op when disabled, so the stall predicate
        // can never hold.
        obs.inflight_enter();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(wd.fired(), 0);
        drop(wd);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn env_knob_parses() {
        // Not set in the test environment unless CI arms it globally; we
        // only check the parse edge cases via the raw parser.
        assert_eq!("250".parse::<u64>().ok().filter(|&ms| ms > 0), Some(250));
        assert_eq!("0".parse::<u64>().ok().filter(|&ms| ms > 0), None);
        assert_eq!("nope".parse::<u64>().ok().filter(|&ms| ms > 0), None);
    }
}
