//! The per-node flight recorder: a fixed-size lock-free ring buffer of
//! recent spans and events, dumped on panic or on explicit request
//! (chaos-test failure triage).
//!
//! Writers claim a slot with one `fetch_add` and publish it seqlock-style:
//! the slot's sequence word is zeroed (busy), the fields are stored with
//! relaxed atomics, and the sequence is set to the claim index + 1.
//! Readers validate the sequence before and after reading the fields and
//! drop torn records. A writer that laps another on the same slot while a
//! read is in flight can only invalidate that one record — acceptable for
//! a diagnostic buffer, and impossible to hit with a ring orders of
//! magnitude larger than the writer count.

use std::sync::atomic::{AtomicU64, Ordering};
// lint: allow(std-lock) — the dump registry is read from the panic hook,
// which must not touch lockdep-instrumented locks mid-unwind.
use std::sync::{Arc, Mutex as StdMutex, OnceLock, Weak};
use std::time::Instant;

use crate::trace::Stage;

/// One recorded span or instant event (plain data).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Start time, nanoseconds since the process-wide recorder epoch.
    pub time_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span_id: u64,
    /// Node that recorded the event.
    pub node: u32,
    pub stage: u8,
    /// RPC opcode when meaningful, 0 otherwise.
    pub opcode: u8,
    /// Stage-specific payload (bytes, ticket, attempt number, ...).
    pub aux: u64,
}

impl EventRecord {
    pub fn stage(&self) -> Option<Stage> {
        Stage::from_u8(self.stage)
    }
}

/// The process-wide time origin for event timestamps, so dumps from
/// different nodes of one in-process cluster are directly comparable.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since [`epoch`].
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[derive(Default)]
struct Slot {
    /// 0 = empty or mid-write; otherwise claim index + 1.
    seq: AtomicU64,
    time_ns: AtomicU64,
    dur_ns: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_span_id: AtomicU64,
    /// node (high 32) | stage (bits 8..16) | opcode (low 8).
    meta: AtomicU64,
    aux: AtomicU64,
}

/// Default ring capacity (slots).
pub const DEFAULT_CAPACITY: usize = 4096;

/// A fixed-size lock-free ring of [`EventRecord`]s.
pub struct FlightRecorder {
    node: u32,
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl FlightRecorder {
    pub fn new(node: u32, capacity: usize) -> Arc<FlightRecorder> {
        let cap = capacity.max(16);
        Arc::new(FlightRecorder {
            node,
            slots: (0..cap).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        })
    }

    pub fn node(&self) -> u32 {
        self.node
    }

    /// Total events ever recorded (not the ring occupancy).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event. Allocation-free; one `fetch_add` plus relaxed
    /// stores.
    #[inline]
    pub fn record(&self, r: &EventRecord) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        slot.seq.store(0, Ordering::Release);
        slot.time_ns.store(r.time_ns, Ordering::Relaxed);
        slot.dur_ns.store(r.dur_ns, Ordering::Relaxed);
        slot.trace_id.store(r.trace_id, Ordering::Relaxed);
        slot.span_id.store(r.span_id, Ordering::Relaxed);
        slot.parent_span_id.store(r.parent_span_id, Ordering::Relaxed);
        slot.meta.store(
            (u64::from(r.node) << 32) | (u64::from(r.stage) << 8) | u64::from(r.opcode),
            Ordering::Relaxed,
        );
        slot.aux.store(r.aux, Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Copies out every intact record, oldest first.
    pub fn read(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let rec = EventRecord {
                time_ns: slot.time_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                span_id: slot.span_id.load(Ordering::Relaxed),
                parent_span_id: slot.parent_span_id.load(Ordering::Relaxed),
                node: (slot.meta.load(Ordering::Relaxed) >> 32) as u32,
                stage: ((slot.meta.load(Ordering::Relaxed) >> 8) & 0xff) as u8,
                opcode: (slot.meta.load(Ordering::Relaxed) & 0xff) as u8,
                aux: slot.aux.load(Ordering::Relaxed),
            };
            if slot.seq.load(Ordering::Acquire) == seq {
                out.push(rec);
            }
        }
        out.sort_by_key(|r| r.time_ns);
        out
    }

    /// Renders the ring as a JSON array of event objects.
    pub fn to_json(&self) -> String {
        let events = self.read();
        let mut s = String::with_capacity(events.len() * 128 + 64);
        s.push_str("{\"node\":");
        s.push_str(&self.node.to_string());
        s.push_str(",\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let stage = e.stage().map(Stage::name).unwrap_or("unknown");
            s.push_str(&format!(
                "{{\"time_ns\":{},\"dur_ns\":{},\"trace_id\":{},\"span_id\":{},\
                 \"parent_span_id\":{},\"node\":{},\"stage\":\"{}\",\"opcode\":{},\"aux\":{}}}",
                e.time_ns,
                e.dur_ns,
                e.trace_id,
                e.span_id,
                e.parent_span_id,
                e.node,
                stage,
                e.opcode,
                e.aux,
            ));
        }
        s.push_str("]}");
        s
    }

    /// Writes the dump under `dir` as `flightrec-<node>.json`, creating
    /// the directory if needed. Returns the path written.
    pub fn dump_to_dir(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flightrec-{}.json", self.node));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Per-process dump sequence: two dumps in one process (two chaos drills,
/// a panic after a watchdog fire, ...) land in distinct directories.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Reasons become path components; keep them shell- and glob-friendly.
fn sanitize_reason(reason: &str) -> String {
    let mut s: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    s.truncate(48);
    if s.is_empty() {
        s.push_str("dump");
    }
    s
}

/// A unique directory for one dump invocation. Dumps are diagnostic
/// output, not canonical results, so they live under
/// `<base>/tmp/flightrec/<reason>-<pid>-<seq>/` — the per-node file name
/// inside (`flightrec-<node>.json`) is keyed only by node id, and the
/// run/test discriminator in the directory stops two tests (or two runs)
/// sharing `results/` from overwriting each other's dumps.
pub fn dump_run_dir(base: &std::path::Path, reason: &str) -> std::path::PathBuf {
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    base.join("tmp").join("flightrec").join(format!(
        "{}-{}-{}",
        sanitize_reason(reason),
        std::process::id(),
        seq
    ))
}

/// Recorders registered for the panic-dump hook. `std::sync::Mutex`: the
/// panic hook must not re-enter lockdep-instrumented locks.
// lint: allow(std-lock) — panic-hook path must avoid instrumented locks
fn dump_registry() -> &'static StdMutex<Vec<Weak<FlightRecorder>>> {
    static REGISTRY: OnceLock<StdMutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(Vec::new()))
}

/// Registers a recorder so [`dump_all`] and the panic hook can reach it.
pub fn register_for_dump(rec: &Arc<FlightRecorder>) {
    if let Ok(mut regs) = dump_registry().lock() {
        regs.retain(|w| w.strong_count() > 0);
        regs.push(Arc::downgrade(rec));
    }
}

/// Dumps every registered recorder into a fresh [`dump_run_dir`] under
/// `base`, announcing each file (and a short tail of events) on stderr.
/// Returns the files written.
pub fn dump_all(base: &std::path::Path, reason: &str) -> Vec<std::path::PathBuf> {
    let recs: Vec<Arc<FlightRecorder>> = match dump_registry().lock() {
        Ok(regs) => regs.iter().filter_map(Weak::upgrade).collect(),
        Err(_) => Vec::new(),
    };
    let dir = dump_run_dir(base, reason);
    let mut written = Vec::new();
    for rec in recs {
        match rec.dump_to_dir(&dir) {
            Ok(path) => {
                eprintln!(
                    "[flightrec] {}: node {} -> {} ({} events recorded)",
                    reason,
                    rec.node(),
                    path.display(),
                    rec.recorded(),
                );
                for e in rec.read().iter().rev().take(8).rev() {
                    eprintln!(
                        "[flightrec]   t={}us dur={}us trace={:#x} span={:#x} parent={:#x} \
                         stage={} op={} aux={}",
                        e.time_ns / 1000,
                        e.dur_ns / 1000,
                        e.trace_id,
                        e.span_id,
                        e.parent_span_id,
                        e.stage().map(Stage::name).unwrap_or("unknown"),
                        e.opcode,
                        e.aux,
                    );
                }
                written.push(path);
            }
            Err(e) => {
                eprintln!("[flightrec] {}: node {} dump failed: {}", reason, rec.node(), e);
            }
        }
    }
    written
}

/// Installs a panic hook (once per process) that dumps every registered
/// recorder under `dir` (routed through [`dump_run_dir`] with reason
/// `panic`) before delegating to the previous hook.
pub fn install_panic_hook(dir: &std::path::Path) {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    let dir = dir.to_path_buf();
    INSTALLED.get_or_init(move || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_all(&dir, "panic");
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span: u64) -> EventRecord {
        EventRecord {
            time_ns: now_ns(),
            dur_ns: 5,
            trace_id: 1,
            span_id: span,
            parent_span_id: span.saturating_sub(1),
            node: 7,
            stage: Stage::Append as u8,
            opcode: 3,
            aux: span * 10,
        }
    }

    #[test]
    fn record_and_read_roundtrip() {
        let r = FlightRecorder::new(7, 64);
        for i in 1..=5u64 {
            r.record(&rec(i));
        }
        let events = r.read();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].span_id, 1);
        assert_eq!(events[4].aux, 50);
        assert_eq!(events[0].stage(), Some(Stage::Append));
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::new(1, 16);
        for i in 1..=40u64 {
            r.record(&rec(i));
        }
        let events = r.read();
        assert_eq!(events.len(), 16);
        assert!(events.iter().all(|e| e.span_id > 24), "only recent events survive");
        assert_eq!(r.recorded(), 40);
    }

    #[test]
    fn concurrent_writers_produce_intact_records() {
        let r = FlightRecorder::new(2, 1024);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let mut e = rec(t * 1_000_000 + i);
                        e.aux = e.span_id; // self-describing for validation
                        r.record(&e);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = r.read();
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.aux, e.span_id, "torn record leaked through seq validation");
        }
    }

    #[test]
    fn json_dump_is_well_formed_enough() {
        let r = FlightRecorder::new(3, 16);
        r.record(&rec(1));
        let json = r.to_json();
        assert!(json.starts_with("{\"node\":3,"));
        assert!(json.contains("\"stage\":\"append\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn dump_run_dirs_are_unique_and_sanitized() {
        let base = std::path::Path::new("results");
        let a = dump_run_dir(base, "chaos: broker #1 froze");
        let b = dump_run_dir(base, "chaos: broker #1 froze");
        assert_ne!(a, b, "each dump invocation gets its own directory");
        assert!(a.starts_with("results/tmp/flightrec"));
        let leaf = a.file_name().unwrap().to_str().unwrap();
        assert!(
            leaf.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
            "unsafe chars leaked into {leaf}"
        );
        assert!(leaf.starts_with("chaos--broker--1-froze-"));
    }

    #[test]
    fn dump_all_routes_to_discriminated_run_dir() {
        let base = std::env::temp_dir().join(format!("kera-dumpall-test-{}", std::process::id()));
        let r = FlightRecorder::new(11, 16);
        register_for_dump(&r);
        r.record(&rec(1));
        let written = dump_all(&base, "unit test");
        let ours: Vec<_> =
            written.iter().filter(|p| p.ends_with("flightrec-11.json")).collect();
        assert_eq!(ours.len(), 1, "written: {written:?}");
        assert!(ours[0].starts_with(base.join("tmp").join("flightrec")));
        // A second dump of the same node must not overwrite the first.
        let again = dump_all(&base, "unit test");
        let ours2: Vec<_> =
            again.iter().filter(|p| p.ends_with("flightrec-11.json")).collect();
        assert_eq!(ours2.len(), 1);
        assert_ne!(ours[0], ours2[0]);
        assert!(ours[0].exists() && ours2[0].exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn dump_to_dir_writes_file() {
        let dir = std::env::temp_dir().join(format!("kera-flightrec-test-{}", std::process::id()));
        let r = FlightRecorder::new(9, 16);
        r.record(&rec(1));
        let path = r.dump_to_dir(&dir).unwrap();
        assert!(path.ends_with("flightrec-9.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"node\":9"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
