//! Causal tracing: trace contexts and thread-local propagation.
//!
//! A [`TraceContext`] names a point in a causal tree: the trace it belongs
//! to and the span that is "current" at this point. Contexts ride on RPC
//! envelopes (two `u64` fields, zero meaning "untraced") and hop threads
//! via an explicit thread-local, set by the RPC worker loop around each
//! `Service::handle` call so nested RPCs inherit the caller's context
//! without any plumbing through service code.

use std::cell::Cell;

/// A point in a causal tree. `trace_id == 0` means "no trace": the
/// context of untraced work and of clusters with observability disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    pub trace_id: u64,
    /// The span that is current at this point; children created from this
    /// context use it as their parent.
    pub span_id: u64,
}

impl TraceContext {
    pub const NONE: TraceContext = TraceContext { trace_id: 0, span_id: 0 };

    #[inline]
    pub fn is_none(self) -> bool {
        self.trace_id == 0
    }

    #[inline]
    pub fn is_some(self) -> bool {
        self.trace_id != 0
    }
}

thread_local! {
    static CURRENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

/// The calling thread's current trace context ([`TraceContext::NONE`] if
/// untraced).
#[inline]
pub fn current() -> TraceContext {
    CURRENT.with(Cell::get)
}

/// Replaces the calling thread's current context, returning the previous
/// one. Prefer [`enter`], which restores on scope exit.
#[inline]
pub fn set_current(ctx: TraceContext) -> TraceContext {
    CURRENT.with(|c| c.replace(ctx))
}

/// Restores the previous thread-local context on drop.
#[must_use = "the previous context is restored when the guard drops"]
pub struct ContextGuard {
    prev: TraceContext,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        set_current(self.prev);
    }
}

/// Makes `ctx` current for the enclosing scope.
#[inline]
pub fn enter(ctx: TraceContext) -> ContextGuard {
    ContextGuard { prev: set_current(ctx) }
}

/// Where in the produce pipeline an event happened. Values are stable
/// (they appear in flight-recorder dumps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client side of one RPC (first attempt through final resolution).
    RpcCall = 1,
    /// A retransmission of an in-flight RPC (instant event).
    RpcRetry = 2,
    /// Server-side execution of one request.
    RpcServe = 3,
    /// A duplicate request answered from the dedup cache (instant event).
    RpcDedupHit = 4,
    /// Broker: physical + virtual-log append of one produce request.
    Append = 5,
    /// Broker: waiting for the touched virtual logs to become durable.
    Replicate = 6,
    /// Replication driver: one consolidated shipping round of a vlog.
    VlogShip = 7,
    /// Backup: applying one BackupWrite batch.
    BackupWrite = 8,
    /// Backup/storage: flushing a closed segment to disk.
    Flush = 9,
    /// Server dropped a request whose deadline had already passed.
    RpcExpired = 10,
    /// Coordinator replica: one vote round (candidacy through outcome).
    ElectionVote = 11,
    /// A replica won an election and became leader (instant event;
    /// aux = the new term).
    ElectionWon = 12,
    /// A follower's election timer fired with no leader heartbeat
    /// (instant event; aux = the term it is abandoning).
    ElectionTimeout = 13,
    /// A leader stepped down after seeing a higher term or losing its
    /// quorum (instant event; aux = the deposed term).
    ElectionStepdown = 14,
    /// Broker admission gate throttled a tenant (instant event;
    /// aux = the tenant's raw node id).
    QuotaThrottle = 15,
    /// Broker admission gate rejected a tenant — ladder escalation or
    /// admission-queue memory pressure (instant event; aux = tenant id).
    QuotaReject = 16,
    /// Broker evicted a tenant session — abuse ladder or zombie sweep
    /// (instant event; aux = tenant id).
    QuotaEvict = 17,
}

/// Number of distinct stages (dense, 1-based).
pub const STAGE_COUNT: usize = 17;

impl Stage {
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::RpcCall,
        Stage::RpcRetry,
        Stage::RpcServe,
        Stage::RpcDedupHit,
        Stage::Append,
        Stage::Replicate,
        Stage::VlogShip,
        Stage::BackupWrite,
        Stage::Flush,
        Stage::RpcExpired,
        Stage::ElectionVote,
        Stage::ElectionWon,
        Stage::ElectionTimeout,
        Stage::ElectionStepdown,
        Stage::QuotaThrottle,
        Stage::QuotaReject,
        Stage::QuotaEvict,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::RpcCall => "rpc_call",
            Stage::RpcRetry => "rpc_retry",
            Stage::RpcServe => "rpc_serve",
            Stage::RpcDedupHit => "rpc_dedup_hit",
            Stage::Append => "append",
            Stage::Replicate => "replicate",
            Stage::VlogShip => "vlog_ship",
            Stage::BackupWrite => "backup_write",
            Stage::Flush => "flush",
            Stage::RpcExpired => "rpc_expired",
            Stage::ElectionVote => "election_vote",
            Stage::ElectionWon => "election_won",
            Stage::ElectionTimeout => "election_timeout",
            Stage::ElectionStepdown => "election_stepdown",
            Stage::QuotaThrottle => "quota_throttle",
            Stage::QuotaReject => "quota_reject",
            Stage::QuotaEvict => "quota_evict",
        }
    }

    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.get(v.wrapping_sub(1) as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_none_semantics() {
        assert!(TraceContext::NONE.is_none());
        assert!(TraceContext { trace_id: 3, span_id: 0 }.is_some());
    }

    #[test]
    fn enter_restores_previous_context() {
        let outer = TraceContext { trace_id: 1, span_id: 10 };
        let inner = TraceContext { trace_id: 2, span_id: 20 };
        assert!(current().is_none());
        {
            let _g = enter(outer);
            assert_eq!(current(), outer);
            {
                let _g2 = enter(inner);
                assert_eq!(current(), inner);
            }
            assert_eq!(current(), outer);
        }
        assert!(current().is_none());
    }

    #[test]
    fn stage_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_u8(s as u8), Some(s));
        }
        assert_eq!(Stage::from_u8(0), None);
        assert_eq!(Stage::from_u8(200), None);
    }
}
