//! Cross-crate integration tests through the facade crate: both systems
//! driven by the same clients deliver identical data, and the system
//! invariants hold end-to-end.

use std::collections::HashMap;
use std::time::Duration;

use kera::broker::KeraCluster;
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera::common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};
use kera::kafka_sim::broker::KafkaTuning;
use kera::kafka_sim::KafkaCluster;

fn stream_config(streamlets: u32, factor: u32) -> StreamConfig {
    StreamConfig {
        id: StreamId(1),
        streamlets,
        active_groups: 1,
        segments_per_group: 8,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    }
}

/// Produces `n` sequence-tagged records and returns, per streamlet, the
/// ordered list of record values the consumer observed.
fn produce_consume(
    meta_p: &MetadataClient,
    meta_c: &MetadataClient,
    n: u64,
) -> HashMap<StreamletId, Vec<u64>> {
    let producer = Producer::new(
        meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 1024,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n);
    producer.close().unwrap();

    let consumer = Consumer::new(
        meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 8192, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut out: HashMap<StreamletId, Vec<u64>> = HashMap::new();
    let mut count = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while count < n && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        batch
            .for_each_record(|_, rec| {
                out.entry(batch.streamlet)
                    .or_default()
                    .push(u64::from_le_bytes(rec.value().try_into().unwrap()));
                count += 1;
            })
            .unwrap();
    }
    assert_eq!(count, n, "incomplete consumption");
    consumer.close();
    out
}

/// KerA and the Kafka baseline must deliver byte-identical per-partition
/// record sequences for the same input (round-robin over 4 partitions).
#[test]
fn kera_and_kafka_deliver_identical_data() {
    let n = 4_000u64;

    let kera = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 3,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt1 = kera.client(0);
    let meta1 = MetadataClient::new(rt1.client(), kera.coordinator());
    meta1.create_stream(stream_config(4, 3)).unwrap();
    let from_kera = produce_consume(&meta1, &meta1, n);
    kera.shutdown();

    let kafka = KafkaCluster::start(
        ClusterConfig { brokers: 3, worker_threads: 3, ..ClusterConfig::default() },
        KafkaTuning { fetch_wait: Duration::from_millis(50), ..KafkaTuning::default() },
    )
    .unwrap();
    let rt2 = kafka.client(0);
    let meta2 = MetadataClient::new(rt2.client(), kafka.coordinator());
    meta2.create_stream(stream_config(4, 3)).unwrap();
    let from_kafka = produce_consume(&meta2, &meta2, n);
    kafka.shutdown();

    assert_eq!(from_kera.len(), 4);
    assert_eq!(from_kera, from_kafka, "the two systems must agree on delivered data");
    // Round-robin: streamlet s holds values ≡ s (mod 4), in order.
    for (sl, values) in &from_kera {
        for (i, v) in values.iter().enumerate() {
            assert_eq!(v % 4, u64::from(sl.raw()));
            assert_eq!(*v, sl.raw() as u64 + (i as u64) * 4);
        }
    }
}

/// Several producers and consumers on several multi-streamlet streams —
/// totals must reconcile exactly.
#[test]
fn multi_stream_multi_client_accounting() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 3,
        ..ClusterConfig::default()
    })
    .unwrap();
    let admin_rt = cluster.client(100);
    let admin = MetadataClient::new(admin_rt.client(), cluster.coordinator());
    let streams: Vec<StreamId> = (1..=6).map(StreamId).collect();
    for &s in &streams {
        let mut cfg = stream_config(3, 2);
        cfg.id = s;
        admin.create_stream(cfg).unwrap();
    }

    let per_producer = 3_000u64;
    let mut producers = Vec::new();
    let mut rts = Vec::new();
    for p in 0..3u32 {
        let rt = cluster.client(p);
        let meta = MetadataClient::new(rt.client(), cluster.coordinator());
        producers.push(
            Producer::new(
                &meta,
                &streams,
                ProducerConfig {
                    id: ProducerId(p),
                    chunk_size: 1024,
                    ..ProducerConfig::default()
                },
            )
            .unwrap(),
        );
        rts.push(rt);
    }
    std::thread::scope(|s| {
        for p in &producers {
            let streams = &streams;
            s.spawn(move || {
                for i in 0..per_producer {
                    let stream = streams[(i % streams.len() as u64) as usize];
                    p.send(stream, &i.to_le_bytes()).unwrap();
                }
                p.flush().unwrap();
            });
        }
    });
    let produced: u64 = producers.iter().map(|p| p.metrics().items()).sum();
    assert_eq!(produced, 3 * per_producer);

    // Two consumers split the streams.
    let mut consumed = 0u64;
    let mut consumers = Vec::new();
    let mut crts = Vec::new();
    for c in 0..2u32 {
        let rt = cluster.client(200 + c);
        let meta = MetadataClient::new(rt.client(), cluster.coordinator());
        let subs: Vec<Subscription> = streams
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as u32 % 2 == c)
            .map(|(_, &s)| Subscription::whole_stream(s))
            .collect();
        consumers.push(
            Consumer::new(&meta, &subs, ConsumerConfig { id: ConsumerId(c), ..Default::default() })
                .unwrap(),
        );
        crts.push(rt);
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while consumed < produced && std::time::Instant::now() < deadline {
        for c in &consumers {
            consumed += c.poll_count(Duration::from_millis(50)).unwrap();
        }
    }
    assert_eq!(consumed, produced);

    for p in producers {
        p.close().unwrap();
    }
    for c in consumers {
        c.close();
    }
    cluster.shutdown();
}

/// Replicated bytes live on exactly R−1 backups, spread over the fleet.
#[test]
fn replication_fan_out_accounting() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(4, 3)).unwrap();

    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 2048, ..ProducerConfig::default() },
    )
    .unwrap();
    let n = 5_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    producer.close().unwrap();

    // Sum of broker-ingested bytes × (R−1) == sum of backup-held bytes.
    let ingested: u64 = cluster.broker_svcs.iter().map(|b| b.bytes_in.get()).sum();
    let held: usize = cluster.backup_svcs.iter().map(|b| b.bytes_held()).sum();
    assert_eq!(held as u64, ingested * 2, "every chunk must live on exactly 2 backups");
    // And the copies are spread over several backups, not piled on one.
    let populated = cluster.backup_svcs.iter().filter(|b| b.bytes_held() > 0).count();
    assert!(populated >= 3, "backups used: {populated}");
    cluster.shutdown();
}

/// The consumer cache bound must hold (backpressure, paper: "a cache of
/// up to 1000 chunks").
#[test]
fn slow_consumer_is_backpressured_not_overrun() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 2,
        worker_threads: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 1)).unwrap();
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 512, ..ProducerConfig::default() },
    )
    .unwrap();
    for i in 0..20_000u64 {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    producer.close().unwrap();

    // A tiny cache (8 batches) with a consumer that never polls: the
    // requests thread must stall on the cache rather than buffer all 20k
    // records.
    let consumer = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig {
            id: ConsumerId(0),
            cache_capacity: 8,
            fetch_max_bytes: 512,
            ..ConsumerConfig::default()
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // Now drain; everything must still arrive exactly once.
    let mut total = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while total < 20_000 && std::time::Instant::now() < deadline {
        total += consumer.poll_count(Duration::from_millis(50)).unwrap();
    }
    assert_eq!(total, 20_000);
    consumer.close();
    cluster.shutdown();
}
