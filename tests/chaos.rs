//! Chaos tests: the full produce → replicate → consume pipeline under a
//! seeded fault injector (drops, duplicates, delays) plus one transient
//! network partition, asserting the client-visible contract holds: every
//! acknowledged record is observed exactly once, in per-slot order.
//!
//! The faults are deterministic per (seed, node) pair; the assertions are
//! invariants, not schedules, so thread interleaving cannot flip them.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use kera::broker::cluster::{backup_node, broker_node, coordinator_node, KeraCluster};
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{
    ClusterConfig, CoordinatorConfig, FaultProfile, ReplicationConfig, RetryPolicy, StreamConfig,
    VirtualLogPolicy,
};
use kera::common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};

fn chaos_cluster(brokers: u32, profile: FaultProfile) -> KeraCluster {
    KeraCluster::start(ClusterConfig {
        brokers,
        worker_threads: 4,
        faults: Some(profile),
        // Patient client, snappy retransmits: a dropped request or reply
        // is retransmitted within attempt_timeout, and the attempt budget
        // (40 x 250 ms = the 10 s call deadline) rides out both slow
        // server-side replication and the partition window below.
        retry: RetryPolicy {
            max_attempts: 40,
            attempt_timeout: Duration::from_millis(250),
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn stream_config(factor: u32) -> StreamConfig {
    StreamConfig {
        id: StreamId(1),
        streamlets: 4,
        active_groups: 1,
        segments_per_group: 8,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    }
}

/// A 64-byte record value carrying its sequence number in the first 8
/// bytes. Fat records mean many chunks, many produce/replicate RPCs —
/// enough traffic for percent-level fault rates to actually fire.
fn payload(i: u64) -> [u8; 64] {
    let mut v = [0u8; 64];
    v[..8].copy_from_slice(&i.to_le_bytes());
    v
}

/// Drains the consumer until `n` records arrive (or a deadline), checking
/// per-(streamlet, slot) order as it goes; returns the observed values.
fn drain(consumer: &Consumer, n: u64) -> Vec<u64> {
    let mut seen: Vec<u64> = Vec::new();
    let mut last_per_slot: HashMap<(StreamletId, u32), u64> = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while (seen.len() as u64) < n && Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        let key = (batch.streamlet, batch.slot);
        batch
            .for_each_record(|_, rec| {
                let v = u64::from_le_bytes(rec.value()[..8].try_into().unwrap());
                if let Some(&prev) = last_per_slot.get(&key) {
                    assert!(v > prev, "per-slot order violated under faults");
                }
                last_per_slot.insert(key, v);
                seen.push(v);
            })
            .unwrap();
    }
    seen
}

/// Lossy, duplicating, delaying network plus one transient partition that
/// black-holes every broker→backup path for 400 ms mid-produce. Retries,
/// retransmit dedup and replication re-issues must carry every record
/// through: no loss, no duplication, order preserved.
#[test]
fn lossy_cluster_with_transient_partition_loses_nothing() {
    let cluster = chaos_cluster(
        3,
        FaultProfile {
            seed: 0xC4A0_57E5,
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            delay_rate: 0.10,
            max_delay: Duration::from_millis(2),
        },
    );
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(2)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();

    const PHASE1: u64 = 800;
    const PHASE2: u64 = 800;
    const PHASE3: u64 = 400;
    const TOTAL: u64 = PHASE1 + PHASE2 + PHASE3;

    // Phase 1: steady state under random drops/duplicates/delays. The
    // short sleeps spread sends over many linger windows, so the producer
    // issues many requests instead of a few giant batches — enough RPC
    // traffic for the percent-level fault rates to actually fire.
    for i in 0..PHASE1 {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();

    // Phase 2: black-hole every broker→backup pair (replication stalls
    // cluster-wide), heal after 400 ms while produces are in flight. The
    // client's retransmits and the replication channel's re-issues both
    // outlast the window, so `VirtualLog::sync` succeeds via retries.
    let plan = cluster.fault_plan().expect("cluster started with faults").clone();
    for b in 0..3 {
        for k in 0..3 {
            plan.partition(broker_node(b), backup_node(k));
        }
    }
    let healer = {
        let plan = plan.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            plan.heal_all();
        })
    };
    for i in PHASE1..PHASE1 + PHASE2 {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();
    healer.join().unwrap();

    // Phase 3: post-heal steady state.
    for i in PHASE1 + PHASE2..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), TOTAL, "every send acknowledged");
    assert_eq!(producer.failed_requests(), 0, "no request exhausted retries");
    producer.close().unwrap();

    // The injector actually did something: messages were dropped by the
    // random faults and black-holed by the partition.
    assert!(
        plan.dropped() > 0,
        "drop_rate 5% never fired: dropped={} duplicated={} delayed={} blocked={}",
        plan.dropped(),
        plan.duplicated(),
        plan.delayed(),
        plan.blocked(),
    );
    assert!(plan.blocked() > 0, "partition window black-holed no messages");

    // Every record exactly once, in per-slot order, from a fresh client.
    let cons_rt = cluster.client(1);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, TOTAL);
    assert_eq!(seen.len() as u64, TOTAL, "record count under faults");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, TOTAL, "no duplicates slipped through");
    assert_eq!(*seen.first().unwrap(), 0);
    assert_eq!(*seen.last().unwrap(), TOTAL - 1);

    consumer.close();
    cluster.shutdown();
}

/// Crash recovery driven over a lossy network: enumerate/read/re-ingest
/// RPCs all ride the retry plane, and the recovered stream still serves
/// every acknowledged record exactly once.
#[test]
fn crash_recovery_survives_lossy_network() {
    let mut cluster = chaos_cluster(
        4,
        FaultProfile {
            seed: 0xDEC0_DE01,
            drop_rate: 0.01,
            duplicate_rate: 0.01,
            delay_rate: 0.02,
            max_delay: Duration::from_millis(1),
        },
    );
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(3)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    const N: u64 = 800;
    for i in 0..N {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), N);
    producer.close().unwrap();

    cluster.crash_server(0);

    let rec_rt = cluster.client(1);
    let manager = kera::recovery::RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        // Small replay batches: each RecoveryIngest stays well inside
        // one attempt_timeout even when its replication hits drops.
        kera::recovery::RecoveryConfig {
            replay_request_bytes: 64 << 10,
            ..kera::recovery::RecoveryConfig::default()
        },
    );
    let report = manager.recover(broker_node(0)).unwrap();
    assert!(report.reassigned_streamlets > 0);
    assert!(report.records_recovered > 0);

    let plan = cluster.fault_plan().unwrap();
    assert!(plan.dropped() > 0, "recovery traffic saw no drops");

    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, N);
    assert_eq!(seen.len() as u64, N, "record count after faulty recovery");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, N);

    consumer.close();
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Coordinator failover chaos (DESIGN.md §10): a 3-replica metadata plane
// must survive the leader dying, hanging, or being partitioned away —
// with a bounded election window, no metadata loss and no split-brain.
// ---------------------------------------------------------------------------

/// Every coordinator failover scenario runs under snappy election
/// timeouts (so a failover completes in tens of milliseconds, not the
/// production default of hundreds) and the chaos retry policy.
fn replicated_cluster(brokers: u32, faults: Option<FaultProfile>) -> KeraCluster {
    KeraCluster::start(ClusterConfig {
        brokers,
        worker_threads: 4,
        faults,
        coordinator: CoordinatorConfig {
            replicas: 3,
            heartbeat_interval: Duration::from_millis(10),
            election_timeout_min: Duration::from_millis(60),
            election_timeout_max: Duration::from_millis(120),
            ..CoordinatorConfig::default()
        },
        retry: RetryPolicy {
            max_attempts: 40,
            attempt_timeout: Duration::from_millis(250),
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Upper bound on how long a failover may take before the suite calls it
/// a hang. Generous vs. the ~120 ms election timeout: CI boxes stall.
const ELECTION_WINDOW: Duration = Duration::from_secs(10);

/// Polls until some replica other than `exclude` believes it leads.
fn await_new_leader(cluster: &KeraCluster, exclude: Option<u32>) -> u32 {
    let deadline = Instant::now() + ELECTION_WINDOW;
    loop {
        for (i, svc) in cluster.coordinator_svcs.iter().enumerate() {
            if Some(i as u32) != exclude && svc.is_leader() {
                return i as u32;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no new coordinator leader within {ELECTION_WINDOW:?} (excluded {exclude:?})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The split-brain audit: across every replica's full history, no term
/// may have been won twice. (Replica-local `won_terms` lists survive
/// kills and freezes — the `Arc<CoordinatorService>` outlives both.)
fn assert_no_split_brain(cluster: &KeraCluster) {
    let mut winner_of: HashMap<u64, usize> = HashMap::new();
    for (i, svc) in cluster.coordinator_svcs.iter().enumerate() {
        for term in svc.won_terms() {
            if let Some(prev) = winner_of.insert(term, i) {
                panic!("split brain: term {term} won by replica {prev} and replica {i}");
            }
        }
    }
}

/// Kill the leader (clean process exit) while producers are mid-stream:
/// a survivor must take over within the election window, in-flight
/// ingestion must keep acknowledging, and every committed stream must
/// still resolve afterwards — no metadata loss, no split-brain.
#[test]
fn coordinator_leader_kill_fails_over_without_metadata_loss() {
    let mut cluster = replicated_cluster(3, None);
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::with_replicas(prod_rt.client(), cluster.coordinators());
    meta_p.create_stream(stream_config(2)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();

    const PHASE1: u64 = 400;
    const PHASE2: u64 = 400;
    const TOTAL: u64 = PHASE1 + PHASE2;
    for i in 0..PHASE1 {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();

    // Kill the leader, then keep producing immediately: the data plane
    // (brokers + backups) must not miss a beat during the election.
    let old = cluster.coordinator_leader().expect("bootstrap election completed");
    cluster.kill_coordinator(old);
    let failover_started = Instant::now();
    for i in PHASE1..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), TOTAL, "ingestion stalled during failover");
    assert_eq!(producer.failed_requests(), 0);
    producer.close().unwrap();

    let new = await_new_leader(&cluster, Some(old));
    assert_ne!(new, old);
    let window = failover_started.elapsed();
    assert!(window < ELECTION_WINDOW, "failover took {window:?}");

    // The metadata plane works again: a *new* stream commits through the
    // new leader, and the pre-failover stream still resolves from a
    // fresh client with its placements intact — nothing was lost.
    let admin_rt = cluster.client(1);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    let md2 = admin
        .create_stream(StreamConfig { id: StreamId(2), ..stream_config(2) })
        .expect("create_stream after failover");
    assert_eq!(md2.config.id, StreamId(2));
    let md1 = admin.refresh(StreamId(1)).expect("pre-failover stream survived");
    assert_eq!(md1.placements.len(), 4, "placements lost in failover");

    // Every acknowledged record is still consumable, exactly once.
    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::with_replicas(cons_rt.client(), cluster.coordinators());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, TOTAL);
    assert_eq!(seen.len() as u64, TOTAL, "records lost across coordinator failover");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, TOTAL);
    consumer.close();

    assert_no_split_brain(&cluster);
    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter_sum("coord_failovers_total", &[]) >= 1,
        "failover counter never fired"
    );
    assert!(snap.counter_sum("coord_elections_total", &[]) >= 2, "elections counter too low");
    cluster.shutdown();
}

/// Freeze the leader (wedged process: ticker stops, every request
/// hangs): the survivors must depose it, and on thaw the stale leader
/// must step down the moment it sees the higher term — leaving exactly
/// one leader and a coherent metadata log.
#[test]
fn coordinator_frozen_leader_is_deposed_and_steps_down_on_thaw() {
    let cluster = replicated_cluster(2, None);
    let admin_rt = cluster.client(0);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    admin.create_stream(stream_config(2)).unwrap();

    let frozen = cluster.coordinator_leader().expect("bootstrap election completed");
    cluster.freeze_coordinator(frozen);

    // The survivors elect around the hung leader, and the metadata plane
    // keeps serving writes while it is still wedged.
    let new = await_new_leader(&cluster, Some(frozen));
    assert_ne!(new, frozen);
    admin
        .create_stream(StreamConfig { id: StreamId(2), ..stream_config(2) })
        .expect("create_stream while old leader hung");

    // Thaw: the stale leader observes the higher term on the next
    // heartbeat and steps down. Eventually exactly one replica leads.
    cluster.thaw_coordinator(frozen);
    let deadline = Instant::now() + ELECTION_WINDOW;
    loop {
        let leaders: Vec<usize> = cluster
            .coordinator_svcs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_leader())
            .map(|(i, _)| i)
            .collect();
        if leaders.len() == 1 && leaders[0] != frozen as usize {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stale leader never stepped down after thaw: leaders={leaders:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Both streams — one committed before the freeze, one during — are
    // visible from a fresh client via the surviving leader.
    let rt = cluster.client(1);
    let meta = MetadataClient::with_replicas(rt.client(), cluster.coordinators());
    assert_eq!(meta.refresh(StreamId(1)).unwrap().config.id, StreamId(1));
    assert_eq!(meta.refresh(StreamId(2)).unwrap().config.id, StreamId(2));

    assert_no_split_brain(&cluster);
    cluster.shutdown();
}

/// Partition the leader from its peers: it must lose quorum and
/// abdicate, the majority side must elect, and on heal the old leader
/// must rejoin as a follower and replicate what it missed — without two
/// replicas ever winning the same term.
#[test]
fn coordinator_partitioned_leader_abdicates_and_rejoins() {
    let cluster = replicated_cluster(2, Some(FaultProfile::default()));
    let admin_rt = cluster.client(0);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    admin.create_stream(stream_config(2)).unwrap();

    let old = cluster.coordinator_leader().expect("bootstrap election completed");
    let plan = cluster.fault_plan().expect("started with a fault plan").clone();
    // Island the leader: cut it from its replica peers *and* from the
    // clients, so nothing can reach it while it still thinks it leads.
    for i in 0..3u32 {
        if i != old {
            plan.partition(coordinator_node(old), coordinator_node(i));
        }
    }
    plan.partition(coordinator_node(old), kera::broker::cluster::client_node(0));
    plan.partition(coordinator_node(old), kera::broker::cluster::client_node(1));

    // The majority side elects a new leader and keeps committing.
    let new = await_new_leader(&cluster, Some(old));
    assert_ne!(new, old);
    admin
        .create_stream(StreamConfig { id: StreamId(2), ..stream_config(2) })
        .expect("create_stream on the majority side");

    // The islanded leader loses quorum acks and abdicates within its
    // election timeout — no minority leader lingers.
    let deadline = Instant::now() + ELECTION_WINDOW;
    while cluster.coordinator_svcs[old as usize].is_leader() {
        assert!(Instant::now() < deadline, "partitioned leader never abdicated");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Heal: the old leader rejoins, observes the higher term, and tails
    // the log it missed; the cluster converges on one leader.
    plan.heal_all();
    let deadline = Instant::now() + ELECTION_WINDOW;
    loop {
        let leaders =
            cluster.coordinator_svcs.iter().filter(|s| s.is_leader()).count();
        let caught_up = cluster.coordinator_svcs[old as usize].committed_streams() >= 2;
        if leaders == 1 && caught_up {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "post-heal convergence failed: leaders={leaders} caught_up={caught_up}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    assert_no_split_brain(&cluster);
    let snap = cluster.metrics_snapshot();
    assert!(snap.counter_sum("coord_failovers_total", &[]) >= 1);
    cluster.shutdown();
}
