//! Chaos tests: the full produce → replicate → consume pipeline under a
//! seeded fault injector (drops, duplicates, delays) plus one transient
//! network partition, asserting the client-visible contract holds: every
//! acknowledged record is observed exactly once, in per-slot order.
//!
//! The faults are deterministic per (seed, node) pair; the assertions are
//! invariants, not schedules, so thread interleaving cannot flip them.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kera::broker::cluster::{backup_node, broker_node, client_node, coordinator_node, KeraCluster};
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{
    ClusterConfig, CoordinatorConfig, FaultProfile, QuotaConfig, ReplicationConfig, RetryPolicy,
    StreamConfig, VirtualLogPolicy,
};
use kera::common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};
use kera::wire::frames::OpCode;
use kera::wire::messages::{ProduceRequest, QuotaStateRequest, QuotaStateResponse};

/// Serializes the drills: each one spins up a full multi-node cluster
/// (worker pools, chaos threads, in the overload storm ten full-speed
/// hammer threads) and asserts on latency windows and throughput
/// floors. Two clusters' worth of spinning threads sharing the machine
/// distort each other's timing — one drill at a time.
static SERIAL: parking_lot::Mutex<()> = parking_lot::Mutex::named("chaos.serial", ());

fn serial() -> parking_lot::MutexGuard<'static, ()> {
    SERIAL.lock()
}

fn chaos_cluster(brokers: u32, profile: FaultProfile) -> KeraCluster {
    KeraCluster::start(ClusterConfig {
        brokers,
        worker_threads: 4,
        faults: Some(profile),
        // Patient client, snappy retransmits: a dropped request or reply
        // is retransmitted within attempt_timeout, and the attempt budget
        // (40 x 250 ms = the 10 s call deadline) rides out both slow
        // server-side replication and the partition window below.
        retry: RetryPolicy {
            max_attempts: 40,
            attempt_timeout: Duration::from_millis(250),
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn stream_config(factor: u32) -> StreamConfig {
    stream_config_for(1, factor)
}

fn stream_config_for(id: u32, factor: u32) -> StreamConfig {
    StreamConfig {
        id: StreamId(id),
        streamlets: 4,
        active_groups: 1,
        segments_per_group: 8,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    }
}

/// A 64-byte record value carrying its sequence number in the first 8
/// bytes. Fat records mean many chunks, many produce/replicate RPCs —
/// enough traffic for percent-level fault rates to actually fire.
fn payload(i: u64) -> [u8; 64] {
    let mut v = [0u8; 64];
    v[..8].copy_from_slice(&i.to_le_bytes());
    v
}

/// Drains the consumer until `n` records arrive (or a deadline), checking
/// per-(streamlet, slot) order as it goes; returns the observed values.
fn drain(consumer: &Consumer, n: u64) -> Vec<u64> {
    let mut seen: Vec<u64> = Vec::new();
    let mut last_per_slot: HashMap<(StreamletId, u32), u64> = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while (seen.len() as u64) < n && Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        let key = (batch.streamlet, batch.slot);
        batch
            .for_each_record(|_, rec| {
                let v = u64::from_le_bytes(rec.value()[..8].try_into().unwrap());
                if let Some(&prev) = last_per_slot.get(&key) {
                    assert!(v > prev, "per-slot order violated under faults: {v} after {prev}");
                }
                last_per_slot.insert(key, v);
                seen.push(v);
            })
            .unwrap();
    }
    seen
}

/// Lossy, duplicating, delaying network plus one transient partition that
/// black-holes every broker→backup path for 400 ms mid-produce. Retries,
/// retransmit dedup and replication re-issues must carry every record
/// through: no loss, no duplication, order preserved.
#[test]
fn lossy_cluster_with_transient_partition_loses_nothing() {
    let _serial = serial();
    let cluster = chaos_cluster(
        3,
        FaultProfile {
            seed: 0xC4A0_57E5,
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            delay_rate: 0.10,
            max_delay: Duration::from_millis(2),
        },
    );
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(2)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();

    const PHASE1: u64 = 800;
    const PHASE2: u64 = 800;
    const PHASE3: u64 = 400;
    const TOTAL: u64 = PHASE1 + PHASE2 + PHASE3;

    // Phase 1: steady state under random drops/duplicates/delays. The
    // short sleeps spread sends over many linger windows, so the producer
    // issues many requests instead of a few giant batches — enough RPC
    // traffic for the percent-level fault rates to actually fire.
    for i in 0..PHASE1 {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();

    // Phase 2: black-hole every broker→backup pair (replication stalls
    // cluster-wide), heal after 400 ms while produces are in flight. The
    // client's retransmits and the replication channel's re-issues both
    // outlast the window, so `VirtualLog::sync` succeeds via retries.
    let plan = cluster.fault_plan().expect("cluster started with faults").clone();
    for b in 0..3 {
        for k in 0..3 {
            plan.partition(broker_node(b), backup_node(k));
        }
    }
    let healer = {
        let plan = plan.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            plan.heal_all();
        })
    };
    for i in PHASE1..PHASE1 + PHASE2 {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();
    healer.join().unwrap();

    // Phase 3: post-heal steady state.
    for i in PHASE1 + PHASE2..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), TOTAL, "every send acknowledged");
    assert_eq!(producer.failed_requests(), 0, "no request exhausted retries");
    producer.close().unwrap();

    // The injector actually did something: messages were dropped by the
    // random faults and black-holed by the partition.
    assert!(
        plan.dropped() > 0,
        "drop_rate 5% never fired: dropped={} duplicated={} delayed={} blocked={}",
        plan.dropped(),
        plan.duplicated(),
        plan.delayed(),
        plan.blocked(),
    );
    assert!(plan.blocked() > 0, "partition window black-holed no messages");

    // Every record exactly once, in per-slot order, from a fresh client.
    let cons_rt = cluster.client(1);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, TOTAL);
    assert_eq!(seen.len() as u64, TOTAL, "record count under faults");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, TOTAL, "no duplicates slipped through");
    assert_eq!(*seen.first().unwrap(), 0);
    assert_eq!(*seen.last().unwrap(), TOTAL - 1);

    consumer.close();
    cluster.shutdown();
}

/// Crash recovery driven over a lossy network: enumerate/read/re-ingest
/// RPCs all ride the retry plane, and the recovered stream still serves
/// every acknowledged record exactly once.
#[test]
fn crash_recovery_survives_lossy_network() {
    let _serial = serial();
    let mut cluster = chaos_cluster(
        4,
        FaultProfile {
            seed: 0xDEC0_DE01,
            drop_rate: 0.01,
            duplicate_rate: 0.01,
            delay_rate: 0.02,
            max_delay: Duration::from_millis(1),
        },
    );
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(3)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    const N: u64 = 800;
    for i in 0..N {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), N);
    producer.close().unwrap();

    cluster.crash_server(0);

    let rec_rt = cluster.client(1);
    let manager = kera::recovery::RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        // Small replay batches: each RecoveryIngest stays well inside
        // one attempt_timeout even when its replication hits drops.
        kera::recovery::RecoveryConfig {
            replay_request_bytes: 64 << 10,
            ..kera::recovery::RecoveryConfig::default()
        },
    );
    let report = manager.recover(broker_node(0)).unwrap();
    assert!(report.reassigned_streamlets > 0);
    assert!(report.records_recovered > 0);

    let plan = cluster.fault_plan().unwrap();
    assert!(plan.dropped() > 0, "recovery traffic saw no drops");

    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, N);
    assert_eq!(seen.len() as u64, N, "record count after faulty recovery");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, N);

    consumer.close();
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Coordinator failover chaos (DESIGN.md §10): a 3-replica metadata plane
// must survive the leader dying, hanging, or being partitioned away —
// with a bounded election window, no metadata loss and no split-brain.
// ---------------------------------------------------------------------------

/// Every coordinator failover scenario runs under snappy election
/// timeouts (so a failover completes in tens of milliseconds, not the
/// production default of hundreds) and the chaos retry policy.
fn replicated_cluster(brokers: u32, faults: Option<FaultProfile>) -> KeraCluster {
    KeraCluster::start(ClusterConfig {
        brokers,
        worker_threads: 4,
        faults,
        coordinator: CoordinatorConfig {
            replicas: 3,
            heartbeat_interval: Duration::from_millis(10),
            election_timeout_min: Duration::from_millis(60),
            election_timeout_max: Duration::from_millis(120),
            ..CoordinatorConfig::default()
        },
        retry: RetryPolicy {
            max_attempts: 40,
            attempt_timeout: Duration::from_millis(250),
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Upper bound on how long a failover may take before the suite calls it
/// a hang. Generous vs. the ~120 ms election timeout: CI boxes stall.
const ELECTION_WINDOW: Duration = Duration::from_secs(10);

/// Polls until some replica other than `exclude` believes it leads.
fn await_new_leader(cluster: &KeraCluster, exclude: Option<u32>) -> u32 {
    let deadline = Instant::now() + ELECTION_WINDOW;
    loop {
        for (i, svc) in cluster.coordinator_svcs.iter().enumerate() {
            if Some(i as u32) != exclude && svc.is_leader() {
                return i as u32;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no new coordinator leader within {ELECTION_WINDOW:?} (excluded {exclude:?})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The split-brain audit: across every replica's full history, no term
/// may have been won twice. (Replica-local `won_terms` lists survive
/// kills and freezes — the `Arc<CoordinatorService>` outlives both.)
fn assert_no_split_brain(cluster: &KeraCluster) {
    let mut winner_of: HashMap<u64, usize> = HashMap::new();
    for (i, svc) in cluster.coordinator_svcs.iter().enumerate() {
        for term in svc.won_terms() {
            if let Some(prev) = winner_of.insert(term, i) {
                panic!("split brain: term {term} won by replica {prev} and replica {i}");
            }
        }
    }
}

/// Kill the leader (clean process exit) while producers are mid-stream:
/// a survivor must take over within the election window, in-flight
/// ingestion must keep acknowledging, and every committed stream must
/// still resolve afterwards — no metadata loss, no split-brain.
#[test]
fn coordinator_leader_kill_fails_over_without_metadata_loss() {
    let _serial = serial();
    let mut cluster = replicated_cluster(3, None);
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::with_replicas(prod_rt.client(), cluster.coordinators());
    meta_p.create_stream(stream_config(2)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();

    const PHASE1: u64 = 400;
    const PHASE2: u64 = 400;
    const TOTAL: u64 = PHASE1 + PHASE2;
    for i in 0..PHASE1 {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();

    // Kill the leader, then keep producing immediately: the data plane
    // (brokers + backups) must not miss a beat during the election.
    let old = cluster.coordinator_leader().expect("bootstrap election completed");
    cluster.kill_coordinator(old);
    let failover_started = Instant::now();
    for i in PHASE1..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), TOTAL, "ingestion stalled during failover");
    assert_eq!(producer.failed_requests(), 0);
    producer.close().unwrap();

    let new = await_new_leader(&cluster, Some(old));
    assert_ne!(new, old);
    let window = failover_started.elapsed();
    assert!(window < ELECTION_WINDOW, "failover took {window:?}");

    // The metadata plane works again: a *new* stream commits through the
    // new leader, and the pre-failover stream still resolves from a
    // fresh client with its placements intact — nothing was lost.
    let admin_rt = cluster.client(1);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    let md2 = admin
        .create_stream(StreamConfig { id: StreamId(2), ..stream_config(2) })
        .expect("create_stream after failover");
    assert_eq!(md2.config.id, StreamId(2));
    let md1 = admin.refresh(StreamId(1)).expect("pre-failover stream survived");
    assert_eq!(md1.placements.len(), 4, "placements lost in failover");

    // Every acknowledged record is still consumable, exactly once.
    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::with_replicas(cons_rt.client(), cluster.coordinators());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, TOTAL);
    assert_eq!(seen.len() as u64, TOTAL, "records lost across coordinator failover");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, TOTAL);
    consumer.close();

    assert_no_split_brain(&cluster);
    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter_sum("coord_failovers_total", &[]) >= 1,
        "failover counter never fired"
    );
    assert!(snap.counter_sum("coord_elections_total", &[]) >= 2, "elections counter too low");
    cluster.shutdown();
}

/// Freeze the leader (wedged process: ticker stops, every request
/// hangs): the survivors must depose it, and on thaw the stale leader
/// must step down the moment it sees the higher term — leaving exactly
/// one leader and a coherent metadata log.
#[test]
fn coordinator_frozen_leader_is_deposed_and_steps_down_on_thaw() {
    let _serial = serial();
    let cluster = replicated_cluster(2, None);
    let admin_rt = cluster.client(0);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    admin.create_stream(stream_config(2)).unwrap();

    let frozen = cluster.coordinator_leader().expect("bootstrap election completed");
    cluster.freeze_coordinator(frozen);

    // The survivors elect around the hung leader, and the metadata plane
    // keeps serving writes while it is still wedged.
    let new = await_new_leader(&cluster, Some(frozen));
    assert_ne!(new, frozen);
    admin
        .create_stream(StreamConfig { id: StreamId(2), ..stream_config(2) })
        .expect("create_stream while old leader hung");

    // Thaw: the stale leader observes the higher term on the next
    // heartbeat and steps down. Eventually exactly one replica leads.
    cluster.thaw_coordinator(frozen);
    let deadline = Instant::now() + ELECTION_WINDOW;
    loop {
        let leaders: Vec<usize> = cluster
            .coordinator_svcs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_leader())
            .map(|(i, _)| i)
            .collect();
        if leaders.len() == 1 && leaders[0] != frozen as usize {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stale leader never stepped down after thaw: leaders={leaders:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Both streams — one committed before the freeze, one during — are
    // visible from a fresh client via the surviving leader.
    let rt = cluster.client(1);
    let meta = MetadataClient::with_replicas(rt.client(), cluster.coordinators());
    assert_eq!(meta.refresh(StreamId(1)).unwrap().config.id, StreamId(1));
    assert_eq!(meta.refresh(StreamId(2)).unwrap().config.id, StreamId(2));

    assert_no_split_brain(&cluster);
    cluster.shutdown();
}

/// Partition the leader from its peers: it must lose quorum and
/// abdicate, the majority side must elect, and on heal the old leader
/// must rejoin as a follower and replicate what it missed — without two
/// replicas ever winning the same term.
#[test]
fn coordinator_partitioned_leader_abdicates_and_rejoins() {
    let _serial = serial();
    let cluster = replicated_cluster(2, Some(FaultProfile::default()));
    let admin_rt = cluster.client(0);
    let admin = MetadataClient::with_replicas(admin_rt.client(), cluster.coordinators());
    admin.create_stream(stream_config(2)).unwrap();

    let old = cluster.coordinator_leader().expect("bootstrap election completed");
    let plan = cluster.fault_plan().expect("started with a fault plan").clone();
    // Island the leader: cut it from its replica peers *and* from the
    // clients, so nothing can reach it while it still thinks it leads.
    for i in 0..3u32 {
        if i != old {
            plan.partition(coordinator_node(old), coordinator_node(i));
        }
    }
    plan.partition(coordinator_node(old), kera::broker::cluster::client_node(0));
    plan.partition(coordinator_node(old), kera::broker::cluster::client_node(1));

    // The majority side elects a new leader and keeps committing.
    let new = await_new_leader(&cluster, Some(old));
    assert_ne!(new, old);
    admin
        .create_stream(StreamConfig { id: StreamId(2), ..stream_config(2) })
        .expect("create_stream on the majority side");

    // The islanded leader loses quorum acks and abdicates within its
    // election timeout — no minority leader lingers.
    let deadline = Instant::now() + ELECTION_WINDOW;
    while cluster.coordinator_svcs[old as usize].is_leader() {
        assert!(Instant::now() < deadline, "partitioned leader never abdicated");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Heal: the old leader rejoins, observes the higher term, and tails
    // the log it missed; the cluster converges on one leader.
    plan.heal_all();
    let deadline = Instant::now() + ELECTION_WINDOW;
    loop {
        let leaders =
            cluster.coordinator_svcs.iter().filter(|s| s.is_leader()).count();
        let caught_up = cluster.coordinator_svcs[old as usize].committed_streams() >= 2;
        if leaders == 1 && caught_up {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "post-heal convergence failed: leaders={leaders} caught_up={caught_up}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    assert_no_split_brain(&cluster);
    let snap = cluster.metrics_snapshot();
    assert!(snap.counter_sum("coord_failovers_total", &[]) >= 1);
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Overload chaos: multi-tenant admission control under abusive load
// (DESIGN.md §11). These drills run with quotas *enabled* — every other
// test in the suite runs with the default `enabled: false` and must be
// byte-for-byte unaffected by the admission plane.
// ---------------------------------------------------------------------------

fn quota_cluster(brokers: u32, quotas: QuotaConfig, faults: Option<FaultProfile>) -> KeraCluster {
    KeraCluster::start(ClusterConfig {
        brokers,
        worker_threads: 4,
        quotas,
        faults,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Quota profile for the overload storm: a 2 MB/s per-tenant rate far
/// below what the unthrottled broker can serve, so the quota — not the
/// machine — is the binding constraint in both the isolated baseline
/// and the storm run. The polite producer's requests are capped below
/// `burst_bytes` (a request larger than the burst can never be
/// admitted).
fn storm_quotas() -> QuotaConfig {
    QuotaConfig {
        enabled: true,
        produce_bytes_per_sec: 1024 * 1024,
        burst_bytes: 64 * 1024,
        fetch_bytes_per_sec: 0,
        max_inflight_bytes: 256 * 1024,
        // Roomy enough that eleven tenants' bursts and windows fit: the
        // queue-full path rejects *terminally* (memory pressure is not
        // retriable politeness), and this drill wants the polite tenant
        // throttled, never rejected.
        admission_queue_bytes: 4 * 1024 * 1024,
        // Low enough that an instant-retry abuser trips them within one
        // refill window, high enough that the polite producer (honest
        // backoff — its counter resets on every admit) never can.
        reject_after_throttles: 6,
        evict_after_rejections: 3,
        evict_cooldown: Duration::from_millis(200),
        zombie_idle: Duration::from_millis(1500),
    }
}

/// Sends a fixed record volume from one polite (throttle-honoring)
/// producer and flushes; returns (elapsed, client throttle count). The
/// volume is several times the per-tenant burst, so the quota — not
/// machine speed — is the bottleneck and `total / elapsed` measures
/// quota-bound throughput. Fails the test if any request died
/// terminally — a polite client must ride out throttles.
fn polite_run(cluster: &KeraCluster, total: u64) -> (Duration, u64) {
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            // Half the burst: always admittable, and refilling 32 KB at
            // 1 MB/s takes ~32 ms — an order of magnitude above the
            // round-trip, so the quota (not storm-inflated latency)
            // stays the bottleneck even at pipeline depth 1. Depth 1
            // also keeps per-slot order: concurrent in-flight requests
            // to one broker may append out of order.
            request_max_bytes: 32 * 1024,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    let start = Instant::now();
    for i in 0..total {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();
    let elapsed = start.elapsed();
    assert_eq!(producer.failed_requests(), 0, "polite producer lost requests");
    assert_eq!(producer.metrics().items(), total, "every polite send acknowledged");
    let throttles = producer.throttles();
    producer.close().unwrap();
    (elapsed, throttles)
}

/// The 10:1 overload storm (ISSUE drill 1): ten abusive clients that
/// ignore throttle hints and retry instantly hammer one stream while a
/// single polite tenant produces to another. Admission control must
/// hold the polite tenant at ≥ 70% of its isolated (quota-bound)
/// throughput, keep the broker's admission queue under the configured
/// cap, walk the abusers down the throttle → reject → evict ladder, and
/// deliver every acked polite record exactly once. Afterwards the
/// zombie sweep reclaims every idle session.
#[test]
fn overload_polite_tenants_keep_throughput_floor() {
    let _serial = serial();
    // ~2.5 MB of chunk traffic: ~0.6 s through two 2 MB/s buckets.
    const POLITE_RECORDS: u64 = 30_000;
    let quotas = storm_quotas();

    // Baseline: the polite tenant alone on an identical cluster. The
    // quota binds in both runs, so the floor compares quota-rate to
    // quota-rate and does not depend on absolute machine speed.
    let baseline = quota_cluster(2, quotas, None);
    let admin_rt = baseline.client(20);
    let admin = MetadataClient::new(admin_rt.client(), baseline.coordinator());
    admin.create_stream(stream_config_for(1, 1)).unwrap();
    drop(admin_rt);
    let (iso_elapsed, iso_throttles) = polite_run(&baseline, POLITE_RECORDS);
    baseline.shutdown();

    // Storm: same cluster shape, plus ten abusive tenants hammering the
    // brokers' admission gates with raw full-burst Produce calls and
    // ignoring every Throttled/Rejected reply. The polite client
    // library's pacing (bounded queue, linger, backoff) is exactly the
    // machinery an abuser doesn't run, so the storm bypasses Producer
    // and drives the RPC directly: attempt cadence is round-trip-bound,
    // far faster than a 1 MB/s bucket refills a 64 KB deficit, so
    // consecutive throttles pile up and the ladder escalates.
    let cluster = quota_cluster(2, quotas, None);
    let admin_rt = cluster.client(20);
    let admin = MetadataClient::new(admin_rt.client(), cluster.coordinator());
    admin.create_stream(stream_config_for(1, 1)).unwrap();
    drop(admin_rt);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut abuser_threads = Vec::new();
    for a in 0..10u32 {
        let rt = cluster.client(1 + a);
        let stop = Arc::clone(&stop);
        abuser_threads.push(std::thread::spawn(move || {
            // A full-burst-sized garbage request: admission charges the
            // request's byte length before any chunk parsing, which is
            // all an overload storm needs.
            let junk = ProduceRequest {
                producer: ProducerId(100 + a),
                recovery: false,
                chunk_count: 16,
                chunks: vec![0xABu8; 64 * 1024].into(),
            }
            .encode();
            let client = rt.client();
            let mut j = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let broker = broker_node((a + j) % 2);
                let _ =
                    client.call(broker, OpCode::Produce, junk.clone(), Duration::from_secs(2));
                j = j.wrapping_add(1);
                // Abusive, not omnipotent: an attempt every ~half
                // millisecond still lands dozens of consecutive
                // throttles per 64 ms refill window (≫ the reject
                // threshold), without ten spinning threads drowning the
                // polite tenant in raw CPU contention.
                std::thread::sleep(Duration::from_micros(500));
            }
        }));
    }

    let (storm_elapsed, polite_throttles) = polite_run(&cluster, POLITE_RECORDS);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in abuser_threads {
        t.join().unwrap();
    }

    // The throughput floor: abusive neighbours may cost the polite
    // tenant at most 30% of its isolated quota-bound throughput.
    let iso_rate = POLITE_RECORDS as f64 / iso_elapsed.as_secs_f64();
    let storm_rate = POLITE_RECORDS as f64 / storm_elapsed.as_secs_f64();
    assert!(
        storm_rate >= 0.70 * iso_rate,
        "polite tenant starved: storm {storm_rate:.0} rec/s ({storm_elapsed:?}) \
         vs isolated {iso_rate:.0} rec/s ({iso_elapsed:?})"
    );
    // The quota (not machine speed) bound the polite tenant: in at least
    // one of the runs it outran its bucket and was throttled. The
    // isolated run is the deterministic one — round trips are an order
    // of magnitude shorter than the 32 ms per-request refill — while in
    // the storm run contention-stretched cycles can hide the quota.
    assert!(
        iso_throttles + polite_throttles > 0,
        "polite tenant over quota was never throttled"
    );

    // Bounded broker memory: the admission queue's high-water mark never
    // exceeded the configured cap, on any broker, at any instant.
    let mut hwm_sum = 0;
    for b in &cluster.broker_svcs {
        let hwm = b.admission().queue_hwm();
        assert!(
            hwm <= quotas.admission_queue_bytes,
            "admission queue exceeded cap: {hwm} > {}",
            quotas.admission_queue_bytes
        );
        hwm_sum += hwm;
    }
    assert!(hwm_sum > 0, "no bytes ever admitted");

    // The degradation ladder fired end to end: throttles, escalating
    // rejections, evictions.
    let (mut throttles, mut rejections, mut evictions) = (0, 0, 0);
    for b in &cluster.broker_svcs {
        let s = b.admission().snapshot(0);
        throttles += s.throttles;
        rejections += s.rejections;
        evictions += s.evictions;
    }
    assert!(throttles > 0, "no throttles under a 10:1 storm");
    assert!(rejections > 0, "abusers never escalated to rejection");
    assert!(evictions > 0, "abusers never reached eviction");

    // The QuotaState RPC reports the same story over the wire.
    let probe_rt = cluster.client(11);
    let payload_bytes = probe_rt
        .client()
        .call(
            broker_node(0),
            OpCode::QuotaState,
            QuotaStateRequest { tenant: client_node(1).raw() }.encode(),
            Duration::from_secs(5),
        )
        .unwrap();
    let snap = QuotaStateResponse::decode(&payload_bytes).unwrap();
    assert!(snap.enabled, "QuotaState must report quotas on");
    assert!(snap.known, "abusive tenant unknown to broker 0");
    assert!(snap.throttles > 0);

    // Every acked polite record arrives exactly once, in per-slot order.
    let cons_rt = cluster.client(12);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, POLITE_RECORDS);
    assert_eq!(seen.len() as u64, POLITE_RECORDS, "polite record count");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, POLITE_RECORDS, "duplicate polite records");
    assert_eq!(*seen.first().unwrap(), 0);
    assert_eq!(*seen.last().unwrap(), POLITE_RECORDS - 1);
    consumer.close();

    // Zombie sweep: once every session has idled past `zombie_idle`, the
    // next admission sweeps them all; only the probing tenant remains.
    std::thread::sleep(quotas.zombie_idle + Duration::from_millis(300));
    for b in &cluster.broker_svcs {
        let _ = b.admission().admit(client_node(60), 1);
        assert_eq!(
            b.admission().tenant_count(),
            1,
            "idle sessions survived the zombie sweep"
        );
    }

    cluster.shutdown();
}

/// Slow-consumer pile-up (ISSUE drill 2): one consumer's uplink turns
/// glacial (every send stalls) while another reads at full speed, with a
/// fetch-side quota metering both. The broker must stay bounded, the
/// fetch quota must actually throttle, and *both* consumers — fast and
/// slow — must still receive every acknowledged record exactly once.
#[test]
fn slow_consumer_pileup_keeps_broker_bounded() {
    let _serial = serial();
    let quotas = QuotaConfig {
        enabled: true,
        // Produce effectively unmetered: every throttle in this drill is
        // fetch-side.
        produce_bytes_per_sec: 256 * 1024 * 1024,
        burst_bytes: 8 * 1024 * 1024,
        fetch_bytes_per_sec: 256 * 1024,
        max_inflight_bytes: 8 * 1024 * 1024,
        admission_queue_bytes: 16 * 1024 * 1024,
        reject_after_throttles: 10_000,
        evict_after_rejections: 10_000,
        evict_cooldown: Duration::from_secs(1),
        zombie_idle: Duration::from_secs(30),
    };
    // Inert fault profile: zero rates, but the injector is wired so
    // slow-client mode can be flipped on per node.
    let cluster = quota_cluster(2, quotas, Some(FaultProfile::default()));
    let plan = cluster.fault_plan().expect("faults wired").clone();

    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(1)).unwrap();
    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 512, ..ProducerConfig::default() },
    )
    .unwrap();
    const TOTAL: u64 = 1500;
    for i in 0..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.failed_requests(), 0);
    producer.close().unwrap();

    // The slow consumer: every byte it sends (fetch requests included)
    // stalls 2 ms at the transport.
    plan.set_slow(client_node(2), Duration::from_millis(2));

    let drain_all = |client_idx: u32, consumer_id: u32| {
        let rt = cluster.client(client_idx);
        let meta = MetadataClient::new(rt.client(), cluster.coordinator());
        let consumer = Consumer::new(
            &meta,
            &[Subscription::whole_stream(StreamId(1))],
            ConsumerConfig {
                id: ConsumerId(consumer_id),
                fetch_max_bytes: 4096,
                ..ConsumerConfig::default()
            },
        )
        .unwrap();
        let mut seen = drain(&consumer, TOTAL);
        consumer.close();
        assert_eq!(seen.len() as u64, TOTAL, "consumer {consumer_id} record count");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u64, TOTAL, "consumer {consumer_id} saw duplicates");
    };
    drain_all(1, 0); // full speed, quota-throttled
    drain_all(2, 1); // glacial uplink, quota-throttled *and* stalled

    assert!(plan.stalled() > 0, "slow-client mode never stalled a send");
    let mut throttles = 0;
    for b in &cluster.broker_svcs {
        throttles += b.admission().snapshot(0).throttles;
        let hwm = b.admission().queue_hwm();
        assert!(hwm <= quotas.admission_queue_bytes, "queue over cap: {hwm}");
    }
    // Produce is effectively unmetered, so every throttle is fetch-side.
    assert!(throttles > 0, "fetch quota never throttled a consumer");

    cluster.shutdown();
}

/// Quota flapping mid-ingest (ISSUE drill 3): an operator (or a broken
/// controller) toggles admission control on/off and swings the rate
/// between a trickle and a flood while a polite producer streams. The
/// client-visible contract must hold through every flip — zero terminal
/// failures, every record exactly once — and when the dust settles the
/// admission accounting must drain to exactly zero (no leaked window
/// bytes, no stuck queue bytes).
#[test]
fn quota_flapping_mid_ingest_preserves_exactly_once() {
    let _serial = serial();
    let quotas = QuotaConfig {
        enabled: true,
        produce_bytes_per_sec: 4 * 1024 * 1024,
        burst_bytes: 64 * 1024,
        fetch_bytes_per_sec: 0,
        max_inflight_bytes: 512 * 1024,
        admission_queue_bytes: 4 * 1024 * 1024,
        // The flapping drill is about accounting, not abuse: keep the
        // ladder out of the way so throttles never escalate.
        reject_after_throttles: 100_000,
        evict_after_rejections: 100_000,
        evict_cooldown: Duration::from_secs(1),
        zombie_idle: Duration::from_secs(30),
    };
    let cluster = quota_cluster(2, quotas, None);
    let admission: Vec<_> =
        cluster.broker_svcs.iter().map(|b| Arc::clone(b.admission())).collect();

    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(1)).unwrap();
    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            request_max_bytes: 16 * 1024,
            ..ProducerConfig::default()
        },
    )
    .unwrap();

    let flapper = std::thread::spawn(move || {
        for i in 0..24u32 {
            match i % 4 {
                0 => admission.iter().for_each(|a| a.set_produce_rate(128 * 1024)),
                1 => admission.iter().for_each(|a| a.set_enabled(false)),
                2 => admission.iter().for_each(|a| {
                    a.set_enabled(true);
                    a.set_produce_rate(8 * 1024 * 1024);
                }),
                _ => admission.iter().for_each(|a| a.set_produce_rate(192 * 1024)),
            }
            std::thread::sleep(Duration::from_millis(40));
        }
        // Settle on: enabled, at the original configured rate.
        admission.iter().for_each(|a| {
            a.set_enabled(true);
            a.set_produce_rate(4 * 1024 * 1024);
        });
    });

    const TOTAL: u64 = 12_000;
    for i in 0..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
    }
    producer.flush().unwrap();
    flapper.join().unwrap();

    assert_eq!(producer.failed_requests(), 0, "flapping caused terminal failures");
    assert_eq!(producer.metrics().items(), TOTAL, "every send acknowledged");
    assert!(producer.throttles() > 0, "trickle phases never throttled the producer");
    producer.close().unwrap();

    // Accounting drains to exactly zero once the pipeline quiesces: every
    // permit released its queue bytes and its tenant window bytes, across
    // enable/disable flips and rate swings.
    std::thread::sleep(Duration::from_millis(100));
    for b in &cluster.broker_svcs {
        assert_eq!(b.admission().queue_bytes(), 0, "leaked admission queue bytes");
        let snap = b.admission().snapshot(client_node(0).raw());
        if snap.known {
            assert_eq!(snap.inflight_bytes, 0, "leaked tenant window bytes");
        }
    }

    // Exactly-once delivery of all 12k records, through all the flips.
    let cons_rt = cluster.client(1);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, TOTAL);
    assert_eq!(seen.len() as u64, TOTAL, "record count after flapping");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, TOTAL, "duplicates after flapping");
    consumer.close();
    cluster.shutdown();
}

/// The stall drill (DESIGN.md §13): freeze a broker's data plane
/// mid-ingest with the watchdogs armed. The produce in flight hangs, the
/// progress heartbeat stops, and within the threshold the broker's
/// watchdog must auto-dump its flight-recorder ring plus at least one
/// sampled slow span tree — the post-mortem an operator would otherwise
/// have to race the stall to collect. Fetches and Introspect stay live
/// on the frozen node throughout.
#[test]
fn frozen_broker_mid_ingest_triggers_watchdog_dump() {
    use kera::wire::chunk::ChunkBuilder;
    use kera::wire::record::Record;

    let _serial = serial();
    let mut cluster = KeraCluster::start(ClusterConfig {
        brokers: 2,
        worker_threads: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    cluster.arm_watchdogs(Duration::from_millis(150));

    let client_rt = cluster.client(0);
    let client = client_rt.client();
    let md_bytes = client
        .call(
            cluster.coordinator(),
            OpCode::CreateStream,
            kera::wire::messages::CreateStreamRequest { config: stream_config_for(77, 1) }
                .encode(),
            Duration::from_secs(5),
        )
        .unwrap();
    let md = kera::wire::messages::StreamMetadata::decode(&md_bytes).unwrap();
    let broker = md.broker_of(StreamletId(0)).unwrap();

    let make_chunk = || {
        let mut b = ChunkBuilder::new(8192, ProducerId(9), StreamId(77), StreamletId(0));
        for i in 0..20u32 {
            b.append(&Record::value_only(&payload(u64::from(i))));
        }
        b.seal()
    };
    let produce_req = |chunk: bytes::Bytes| ProduceRequest {
        producer: ProducerId(9),
        recovery: false,
        chunk_count: 1,
        chunks: chunk,
    };

    // Real ingest first: spans land in the ring and the slow store, and
    // the progress heartbeat advances.
    for _ in 0..3 {
        client
            .call(broker, OpCode::Produce, produce_req(make_chunk()).encode(), Duration::from_secs(5))
            .unwrap();
    }

    // Freeze the data plane, then send the produce that stalls in it.
    let frozen_ix = broker.raw() - 1;
    cluster.freeze_broker(frozen_ix);
    let hung = {
        let client = client_rt.client();
        let req = produce_req(make_chunk()).encode();
        std::thread::spawn(move || {
            client.call(broker, OpCode::Produce, req, Duration::from_secs(10))
        })
    };

    // The broker's watchdog must notice: work in flight, heartbeat flat.
    let deadline = Instant::now() + Duration::from_secs(5);
    let dump = loop {
        if let Some(path) = cluster.watchdogs().iter().find_map(|w| {
            (w.fired() > 0).then(|| w.last_dump()).flatten()
        }) {
            break path;
        }
        assert!(Instant::now() < deadline, "watchdog never fired on the frozen broker");
        std::thread::sleep(Duration::from_millis(10));
    };
    let body = std::fs::read_to_string(&dump).unwrap();
    assert!(
        body.contains(&format!("\"node\":{}", broker.raw())),
        "dump is not the frozen broker's: {dump:?}"
    );
    assert!(body.contains("\"ring\":{"), "flight-recorder ring missing from dump");
    assert!(
        body.contains("\"slow_traces\":[{") && body.contains("\"tree\":["),
        "expected at least one sampled slow span tree in the dump"
    );

    // The frozen node stays observable: Introspect answers while the
    // data plane hangs, and reports the in-flight produce.
    let intro = client
        .call(
            broker,
            OpCode::Introspect,
            kera::wire::messages::IntrospectRequest {
                sections: kera::wire::messages::introspect_sections::HEALTH,
            }
            .encode(),
            Duration::from_secs(2),
        )
        .unwrap();
    let intro = kera::wire::messages::IntrospectResponse::decode(&intro).unwrap();
    assert!(intro.inflight >= 1, "frozen broker must report its stuck produce in flight");
    assert_eq!(intro.watchdog_ms, 150);

    // Thaw: the stalled produce completes and ingest resumes.
    cluster.thaw_broker(frozen_ix);
    hung.join().unwrap().expect("produce must complete after thaw");
    client
        .call(broker, OpCode::Produce, produce_req(make_chunk()).encode(), Duration::from_secs(5))
        .unwrap();
    cluster.shutdown();
}
