//! Chaos tests: the full produce → replicate → consume pipeline under a
//! seeded fault injector (drops, duplicates, delays) plus one transient
//! network partition, asserting the client-visible contract holds: every
//! acknowledged record is observed exactly once, in per-slot order.
//!
//! The faults are deterministic per (seed, node) pair; the assertions are
//! invariants, not schedules, so thread interleaving cannot flip them.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use kera::broker::cluster::{backup_node, broker_node, KeraCluster};
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{
    ClusterConfig, FaultProfile, ReplicationConfig, RetryPolicy, StreamConfig, VirtualLogPolicy,
};
use kera::common::ids::{ConsumerId, ProducerId, StreamId, StreamletId};

fn chaos_cluster(brokers: u32, profile: FaultProfile) -> KeraCluster {
    KeraCluster::start(ClusterConfig {
        brokers,
        worker_threads: 4,
        faults: Some(profile),
        // Patient client, snappy retransmits: a dropped request or reply
        // is retransmitted within attempt_timeout, and the attempt budget
        // (40 x 250 ms = the 10 s call deadline) rides out both slow
        // server-side replication and the partition window below.
        retry: RetryPolicy {
            max_attempts: 40,
            attempt_timeout: Duration::from_millis(250),
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn stream_config(factor: u32) -> StreamConfig {
    StreamConfig {
        id: StreamId(1),
        streamlets: 4,
        active_groups: 1,
        segments_per_group: 8,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    }
}

/// A 64-byte record value carrying its sequence number in the first 8
/// bytes. Fat records mean many chunks, many produce/replicate RPCs —
/// enough traffic for percent-level fault rates to actually fire.
fn payload(i: u64) -> [u8; 64] {
    let mut v = [0u8; 64];
    v[..8].copy_from_slice(&i.to_le_bytes());
    v
}

/// Drains the consumer until `n` records arrive (or a deadline), checking
/// per-(streamlet, slot) order as it goes; returns the observed values.
fn drain(consumer: &Consumer, n: u64) -> Vec<u64> {
    let mut seen: Vec<u64> = Vec::new();
    let mut last_per_slot: HashMap<(StreamletId, u32), u64> = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while (seen.len() as u64) < n && Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        let key = (batch.streamlet, batch.slot);
        batch
            .for_each_record(|_, rec| {
                let v = u64::from_le_bytes(rec.value()[..8].try_into().unwrap());
                if let Some(&prev) = last_per_slot.get(&key) {
                    assert!(v > prev, "per-slot order violated under faults");
                }
                last_per_slot.insert(key, v);
                seen.push(v);
            })
            .unwrap();
    }
    seen
}

/// Lossy, duplicating, delaying network plus one transient partition that
/// black-holes every broker→backup path for 400 ms mid-produce. Retries,
/// retransmit dedup and replication re-issues must carry every record
/// through: no loss, no duplication, order preserved.
#[test]
fn lossy_cluster_with_transient_partition_loses_nothing() {
    let cluster = chaos_cluster(
        3,
        FaultProfile {
            seed: 0xC4A0_57E5,
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            delay_rate: 0.10,
            max_delay: Duration::from_millis(2),
        },
    );
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(2)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();

    const PHASE1: u64 = 800;
    const PHASE2: u64 = 800;
    const PHASE3: u64 = 400;
    const TOTAL: u64 = PHASE1 + PHASE2 + PHASE3;

    // Phase 1: steady state under random drops/duplicates/delays. The
    // short sleeps spread sends over many linger windows, so the producer
    // issues many requests instead of a few giant batches — enough RPC
    // traffic for the percent-level fault rates to actually fire.
    for i in 0..PHASE1 {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();

    // Phase 2: black-hole every broker→backup pair (replication stalls
    // cluster-wide), heal after 400 ms while produces are in flight. The
    // client's retransmits and the replication channel's re-issues both
    // outlast the window, so `VirtualLog::sync` succeeds via retries.
    let plan = cluster.fault_plan().expect("cluster started with faults").clone();
    for b in 0..3 {
        for k in 0..3 {
            plan.partition(broker_node(b), backup_node(k));
        }
    }
    let healer = {
        let plan = plan.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            plan.heal_all();
        })
    };
    for i in PHASE1..PHASE1 + PHASE2 {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();
    healer.join().unwrap();

    // Phase 3: post-heal steady state.
    for i in PHASE1 + PHASE2..TOTAL {
        producer.send(StreamId(1), &payload(i)).unwrap();
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), TOTAL, "every send acknowledged");
    assert_eq!(producer.failed_requests(), 0, "no request exhausted retries");
    producer.close().unwrap();

    // The injector actually did something: messages were dropped by the
    // random faults and black-holed by the partition.
    assert!(
        plan.dropped() > 0,
        "drop_rate 5% never fired: dropped={} duplicated={} delayed={} blocked={}",
        plan.dropped(),
        plan.duplicated(),
        plan.delayed(),
        plan.blocked(),
    );
    assert!(plan.blocked() > 0, "partition window black-holed no messages");

    // Every record exactly once, in per-slot order, from a fresh client.
    let cons_rt = cluster.client(1);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, TOTAL);
    assert_eq!(seen.len() as u64, TOTAL, "record count under faults");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, TOTAL, "no duplicates slipped through");
    assert_eq!(*seen.first().unwrap(), 0);
    assert_eq!(*seen.last().unwrap(), TOTAL - 1);

    consumer.close();
    cluster.shutdown();
}

/// Crash recovery driven over a lossy network: enumerate/read/re-ingest
/// RPCs all ride the retry plane, and the recovered stream still serves
/// every acknowledged record exactly once.
#[test]
fn crash_recovery_survives_lossy_network() {
    let mut cluster = chaos_cluster(
        4,
        FaultProfile {
            seed: 0xDEC0_DE01,
            drop_rate: 0.01,
            duplicate_rate: 0.01,
            delay_rate: 0.02,
            max_delay: Duration::from_millis(1),
        },
    );
    let prod_rt = cluster.client(0);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    meta_p.create_stream(stream_config(3)).unwrap();

    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    const N: u64 = 800;
    for i in 0..N {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), N);
    producer.close().unwrap();

    cluster.crash_server(0);

    let rec_rt = cluster.client(1);
    let manager = kera::recovery::RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        // Small replay batches: each RecoveryIngest stays well inside
        // one attempt_timeout even when its replication hits drops.
        kera::recovery::RecoveryConfig {
            replay_request_bytes: 64 << 10,
            ..kera::recovery::RecoveryConfig::default()
        },
    );
    let report = manager.recover(broker_node(0)).unwrap();
    assert!(report.reassigned_streamlets > 0);
    assert!(report.records_recovered > 0);

    let plan = cluster.fault_plan().unwrap();
    assert!(plan.dropped() > 0, "recovery traffic saw no drops");

    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), fetch_max_bytes: 4096, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = drain(&consumer, N);
    assert_eq!(seen.len() as u64, N, "record count after faulty recovery");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, N);

    consumer.close();
    cluster.shutdown();
}
