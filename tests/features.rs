//! Integration tests for the API features beyond the produce/consume
//! core: stream deletion, consumer seek/resume, producer pipelining.

use std::time::Duration;

use kera::broker::KeraCluster;
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera::common::ids::{ConsumerId, ProducerId, StreamId};

fn cluster(brokers: u32) -> KeraCluster {
    KeraCluster::start(ClusterConfig { brokers, worker_threads: 2, ..ClusterConfig::default() })
        .unwrap()
}

fn stream_config(id: u32, streamlets: u32, policy: VirtualLogPolicy) -> StreamConfig {
    StreamConfig {
        id: StreamId(id),
        streamlets,
        active_groups: 1,
        segments_per_group: 4,
        segment_size: 1 << 16,
        replication: ReplicationConfig { factor: 3, policy, vseg_size: 1 << 16 },
    }
}

#[test]
fn delete_stream_frees_dedicated_vlogs_and_backups() {
    let cluster = cluster(4);
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 4, VirtualLogPolicy::PerStreamlet)).unwrap();

    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 1024, ..ProducerConfig::default() },
    )
    .unwrap();
    for i in 0..2_000u64 {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    producer.close().unwrap();

    let held_before: usize = cluster.backup_svcs.iter().map(|b| b.bytes_held()).sum();
    assert!(held_before > 0);

    meta.delete_stream(StreamId(1)).unwrap();

    // Metadata is gone...
    assert!(meta.refresh(StreamId(1)).is_err());
    // ...new producers cannot connect...
    assert!(Producer::new(&meta, &[StreamId(1)], ProducerConfig::default()).is_err());
    // ...and the backups eventually free the replicated segments
    // (fire-and-forget frees; poll briefly).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let held: usize = cluster.backup_svcs.iter().map(|b| b.bytes_held()).sum();
        if held == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "backups still hold {held} bytes after deletion"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Deleting again errors cleanly.
    assert!(meta.delete_stream(StreamId(1)).is_err());
    cluster.shutdown();
}

#[test]
fn delete_with_shared_pool_removes_stream_but_keeps_pool_logs() {
    let cluster = cluster(3);
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 2, VirtualLogPolicy::SharedPerBroker(2))).unwrap();
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 1024, ..ProducerConfig::default() },
    )
    .unwrap();
    for i in 0..500u64 {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    producer.close().unwrap();
    meta.delete_stream(StreamId(1)).unwrap();
    // Shared logs stay alive (space reclaim = log cleaning, future work);
    // the stream itself is gone from every broker.
    for b in &cluster.broker_svcs {
        assert!(b.store().stream(StreamId(1)).is_err());
    }
    cluster.shutdown();
}

#[test]
fn consumer_resumes_from_saved_positions_exactly_once() {
    // 3 brokers: R3 needs 2 backup candidates beyond the co-located one.
    let cluster = cluster(3);
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 2, VirtualLogPolicy::SharedPerBroker(2))).unwrap();
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 512, ..ProducerConfig::default() },
    )
    .unwrap();
    let n = 4_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n, "all records must be acked before consuming");
    assert_eq!(producer.failed_requests(), 0);
    producer.close().unwrap();

    // First consumer reads roughly half, then we snapshot its positions
    // after draining its cache (so fetched == consumed).
    let c1 = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), cache_capacity: 4, ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut seen = Vec::new();
    let first_deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (seen.len() as u64) < n / 2 {
        assert!(std::time::Instant::now() < first_deadline, "first half never arrived");
        let Some(batch) = c1.next_batch(Duration::from_millis(200)) else { continue };
        batch
            .for_each_record(|_, rec| {
                seen.push(u64::from_le_bytes(rec.value().try_into().unwrap()));
            })
            .unwrap();
    }
    // Drain what is already cached so the snapshot matches consumption
    // (positions reflect *fetched* data; see Consumer::positions docs).
    while let Some(batch) = c1.next_batch(Duration::from_millis(50)) {
        batch
            .for_each_record(|_, rec| {
                seen.push(u64::from_le_bytes(rec.value().try_into().unwrap()));
            })
            .unwrap();
    }
    let positions = c1.positions();
    c1.close();

    // Second consumer resumes exactly where the first stopped.
    let c2 = Consumer::new(
        &meta,
        &[Subscription::resume(StreamId(1), positions)],
        ConsumerConfig { id: ConsumerId(1), ..ConsumerConfig::default() },
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while (seen.len() as u64) < n && std::time::Instant::now() < deadline {
        let Some(batch) = c2.next_batch(Duration::from_millis(100)) else { continue };
        batch
            .for_each_record(|_, rec| {
                seen.push(u64::from_le_bytes(rec.value().try_into().unwrap()));
            })
            .unwrap();
    }
    c2.close();
    assert_eq!(seen.len() as u64, n);
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, n, "resume must be exactly-once (no dups, no gaps)");
    cluster.shutdown();
}

#[test]
fn pipelined_producer_delivers_everything() {
    let cluster = cluster(3);
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 3, VirtualLogPolicy::SharedPerBroker(2))).unwrap();
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            pipeline: 4,
            ..ProducerConfig::default()
        },
    )
    .unwrap();
    let n = 8_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n);
    assert_eq!(producer.failed_requests(), 0);
    producer.close().unwrap();

    let consumer = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut total = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while total < n && std::time::Instant::now() < deadline {
        total += consumer.poll_count(Duration::from_millis(100)).unwrap();
    }
    assert_eq!(total, n);
    consumer.close();
    cluster.shutdown();
}

#[test]
fn consumer_starts_at_arbitrary_record_offset() {
    let cluster = cluster(3);
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(stream_config(1, 1, VirtualLogPolicy::SharedPerBroker(2))).unwrap();
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 512, ..ProducerConfig::default() },
    )
    .unwrap();
    let n = 3_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    producer.close().unwrap();

    // Seek to record offset 1000: the broker's lightweight per-chunk
    // index returns the covering chunk's cursor, so the consumer sees a
    // suffix that starts at (or just below, chunk-aligned) the target.
    let target = 1_000u64;
    let sub = Subscription::from_offset(&meta, StreamId(1), target).unwrap();
    assert!(!sub.start.is_empty());
    let consumer = Consumer::new(
        &meta,
        &[sub],
        ConsumerConfig { id: ConsumerId(0), ..ConsumerConfig::default() },
    )
    .unwrap();
    let mut values = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while (values.len() as u64) < n - target && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        batch
            .for_each_record(|_, rec| {
                values.push(u64::from_le_bytes(rec.value().try_into().unwrap()));
            })
            .unwrap();
    }
    consumer.close();
    let first = *values.first().expect("seeked consumer saw nothing");
    // Chunk-aligned: the first value is within one chunk (512 B / 112 B
    // per record ≈ 4 records) below the target, never above it.
    assert!(first <= target, "seek overshot: first={first} target={target}");
    assert!(target - first < 16, "seek undershot too far: first={first}");
    // Everything from `first` to the end arrives in order, exactly once.
    for (i, v) in values.iter().enumerate() {
        assert_eq!(*v, first + i as u64);
    }
    assert_eq!(*values.last().unwrap(), n - 1);
    cluster.shutdown();
}
