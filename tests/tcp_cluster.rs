//! The same cluster, clients and replication protocol over real loopback
//! TCP sockets (the paper's client transport): every RPC crosses the
//! kernel instead of an in-process channel.

use std::time::Duration;

use kera::broker::KeraCluster;
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{
    ClusterConfig, ReplicationConfig, StreamConfig, TransportChoice, VirtualLogPolicy,
};
use kera::common::ids::{ProducerId, StreamId};

#[test]
fn kera_over_tcp_roundtrip() {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 2,
        transport: TransportChoice::Tcp,
        ..ClusterConfig::default()
    })
    .unwrap();
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(StreamConfig {
        id: StreamId(1),
        streamlets: 3,
        active_groups: 1,
        segments_per_group: 4,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor: 3,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    })
    .unwrap();

    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 1024, ..ProducerConfig::default() },
    )
    .unwrap();
    let n = 2_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes()).unwrap();
    }
    producer.flush().unwrap();
    assert_eq!(producer.metrics().items(), n);
    assert_eq!(producer.failed_requests(), 0);
    producer.close().unwrap();

    let consumer = Consumer::new(
        &meta,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig::default(),
    )
    .unwrap();
    let mut consumed = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while consumed < n && std::time::Instant::now() < deadline {
        consumed += consumer.poll_count(Duration::from_millis(100)).unwrap();
    }
    assert_eq!(consumed, n, "all replicated records readable over TCP");
    consumer.close();
    cluster.shutdown();
}
