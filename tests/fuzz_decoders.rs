//! Decoder robustness: arbitrary bytes fed to every wire decoder must
//! produce `Err`, never a panic — brokers parse untrusted client input.

use kera::wire::chunk::{ChunkIter, ChunkView};
use kera::wire::frames::Envelope;
use kera::wire::messages::*;
use kera::wire::record::{RecordIter, RecordView};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn envelope_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Envelope::decode(&data);
    }

    #[test]
    fn record_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(view) = RecordView::parse(&data) {
            let _ = view.verify();
            let _ = view.version();
            let _ = view.timestamp();
            for i in 0..view.num_keys() {
                let _ = view.key(i);
            }
            let _ = view.value();
        }
        // Iteration over garbage terminates.
        let _ = RecordIter::new(&data).count();
    }

    #[test]
    fn chunk_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(view) = ChunkView::parse(&data) {
            let _ = view.verify();
            let _ = view.records().count();
        }
        let _ = ChunkIter::new(&data).count();
    }

    #[test]
    fn message_decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = CreateStreamRequest::decode(&data);
        let _ = StreamMetadata::decode(&data);
        let _ = GetMetadataRequest::decode(&data);
        let _ = HostStreamRequest::decode(&data);
        let _ = ProduceRequest::decode(&data);
        let _ = ProduceResponse::decode(&data);
        let _ = FetchRequest::decode(&data);
        let _ = FetchResponse::decode(&data);
        let _ = BackupWriteRequest::decode(&data);
        let _ = BackupWriteResponse::decode(&data);
        let _ = FollowerFetchRequest::decode(&data);
        let _ = FollowerFetchResponse::decode(&data);
        let _ = RecoveryEnumerateRequest::decode(&data);
        let _ = RecoveryEnumerateResponse::decode(&data);
        let _ = RecoveryReadRequest::decode(&data);
        let _ = ReportCrashRequest::decode(&data);
        let _ = CrashReassignmentResponse::decode(&data);
    }

    /// A record with a corrupted header either fails to parse or fails
    /// to verify — it can never silently pass.
    #[test]
    fn corrupted_record_is_always_detected(
        value in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        use kera::wire::record::Record;
        let mut buf = Vec::new();
        Record::value_only(&value).encode_into(&mut buf);
        let i = flip_byte % buf.len();
        buf[i] ^= 1 << flip_bit;
        let detected = match RecordView::parse(&buf) {
            Err(_) => true,
            Ok(v) => v.verify().is_err(),
        };
        // Flips inside the checksum field itself also change the stored
        // checksum -> verify fails. Every flip must be detected.
        prop_assert!(detected, "undetected flip at byte {i} bit {flip_bit}");
    }
}
