//! Decoder robustness: arbitrary bytes fed to every wire decoder must
//! produce `Err`, never a panic — brokers parse untrusted client input.

use kera::wire::chunk::{ChunkIter, ChunkView};
use kera::wire::frames::Envelope;
use kera::wire::messages::*;
use kera::wire::record::{RecordIter, RecordView};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn envelope_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Envelope::decode(&data);
    }

    #[test]
    fn record_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(view) = RecordView::parse(&data) {
            let _ = view.verify();
            let _ = view.version();
            let _ = view.timestamp();
            for i in 0..view.num_keys() {
                let _ = view.key(i);
            }
            let _ = view.value();
        }
        // Iteration over garbage terminates.
        let _ = RecordIter::new(&data).count();
    }

    #[test]
    fn chunk_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(view) = ChunkView::parse(&data) {
            let _ = view.verify();
            let _ = view.records().count();
        }
        let _ = ChunkIter::new(&data).count();
    }

    #[test]
    fn message_decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = CreateStreamRequest::decode(&data);
        let _ = StreamMetadata::decode(&data);
        let _ = GetMetadataRequest::decode(&data);
        let _ = HostStreamRequest::decode(&data);
        let _ = ProduceRequest::decode(&data);
        let _ = ProduceResponse::decode(&data);
        let _ = FetchRequest::decode(&data);
        let _ = FetchResponse::decode(&data);
        let _ = BackupWriteRequest::decode(&data);
        let _ = BackupWriteResponse::decode(&data);
        let _ = FollowerFetchRequest::decode(&data);
        let _ = FollowerFetchResponse::decode(&data);
        let _ = RecoveryEnumerateRequest::decode(&data);
        let _ = RecoveryEnumerateResponse::decode(&data);
        let _ = RecoveryReadRequest::decode(&data);
        let _ = ReportCrashRequest::decode(&data);
        let _ = CrashReassignmentResponse::decode(&data);
        let _ = QuotaStateRequest::decode(&data);
        let _ = QuotaStateResponse::decode(&data);
        let _ = IntrospectRequest::decode(&data);
        let _ = IntrospectResponse::decode(&data);
    }

    /// The introspection wire surface: a real `IntrospectResponse` (JSON
    /// bodies included) truncated or bit-flipped anywhere either fails to
    /// decode or decodes to a response that re-encodes without panicking —
    /// scrapers parse these off the network from arbitrary nodes.
    #[test]
    fn mangled_introspect_response_never_panics(
        node in 0u32..5000,
        role in 0u8..3,
        lag in 0u64..(1 << 30),
        cut_num in 0usize..10_000,
        flip_byte in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let resp = IntrospectResponse {
            node,
            role,
            is_leader: role == introspect_role::COORDINATOR,
            term: 3,
            appended_bytes: lag * 2,
            durable_bytes: lag,
            metrics_json: "{\"counters\":{\"kera.rpc.calls{node=\\\"1\\\"}\":4}}".into(),
            traces_json: "[{\"stage\":\"append\",\"dur_ns\":123}]".into(),
            ..IntrospectResponse::default()
        };
        let encoded = resp.encode().unwrap();

        // Truncation anywhere: every proper prefix must fail (the fixed
        // header and two length-prefixed strings bound every read).
        let cut = cut_num % encoded.len();
        prop_assert!(IntrospectResponse::decode(&encoded[..cut]).is_err(), "cut at {} decoded", cut);

        // A single bit flip either fails to decode (bool/role/length
        // corruption) or yields a response that re-encodes cleanly.
        let mut mutant = encoded.to_vec();
        let i = flip_byte % mutant.len();
        mutant[i] ^= 1 << flip_bit;
        if let Ok(decoded) = IntrospectResponse::decode(&mutant) {
            let _ = decoded.encode();
        }
    }

    /// The admission plane's wire surface (DESIGN.md §11): a `Throttled`
    /// error envelope carries structured retry_after/window_hint extras
    /// after the message. Truncating or bit-flipping the frame anywhere
    /// must never panic in decode or `check_status`; a mangled extras
    /// section degrades to "retry now, no hint" rather than erroring.
    #[test]
    fn mangled_throttled_envelope_never_panics(
        retry_us in 0u64..10_000_000,
        window in 0u64..(1 << 32),
        cut in 0usize..256,
        flip_byte in 0usize..128,
        flip_bit in 0u8..8,
    ) {
        use kera::common::ids::NodeId;
        use kera::common::KeraError;
        use kera::wire::frames::{OpCode, StatusCode};

        let err = KeraError::Throttled {
            retry_after: std::time::Duration::from_micros(retry_us),
            window_hint: window,
        };
        let env = Envelope::error_response(OpCode::Produce, 99, NodeId(1), &err);
        let encoded = env.encode().to_vec();

        // Truncation anywhere: decode errors or yields an envelope whose
        // check_status still produces a structured error, never a panic.
        let cut = cut % (encoded.len() + 1);
        if let Ok(truncated) = Envelope::decode(&encoded[..cut]) {
            let _ = truncated.check_status();
        }

        // A single bit flip: same contract, and if the status byte still
        // says Throttled the error must come back as Throttled.
        let mut mutant = encoded.clone();
        let i = flip_byte % mutant.len();
        mutant[i] ^= 1 << flip_bit;
        if let Ok(decoded) = Envelope::decode(&mutant) {
            let status = decoded.status;
            match decoded.check_status() {
                Err(KeraError::Throttled { .. }) => prop_assert_eq!(status, StatusCode::Throttled),
                Err(_) => prop_assert!(status != StatusCode::Ok),
                Ok(()) => prop_assert_eq!(status, StatusCode::Ok),
            }
        }
    }

    /// Truncating an encoded envelope anywhere never panics: cuts inside
    /// the header fail to decode; cuts inside the payload decode to a
    /// shorter payload (the envelope has no own length field — framing
    /// is the transport's job) and every header field survives intact.
    #[test]
    fn truncated_envelope_decodes_or_errors(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut in 0usize..256,
    ) {
        use kera::common::ids::NodeId;
        use kera::wire::frames::OpCode;
        use std::time::Duration;

        let env = Envelope::request(
            OpCode::Produce,
            0xdead_beef,
            NodeId(7),
            bytes::Bytes::from(payload),
        )
        .with_deadline(Duration::from_millis(250));
        let encoded = env.encode();
        let cut = cut % (encoded.len() + 1);
        match Envelope::decode(&encoded[..cut]) {
            Ok(decoded) => {
                prop_assert!(cut >= Envelope::HEADER_LEN);
                prop_assert_eq!(decoded.request_id, env.request_id);
                prop_assert_eq!(decoded.from, env.from);
                prop_assert_eq!(decoded.deadline_micros, env.deadline_micros);
                prop_assert_eq!(decoded.payload.len(), cut - Envelope::HEADER_LEN);
            }
            Err(_) => prop_assert!(cut < Envelope::HEADER_LEN),
        }
    }

    /// A bit-flipped envelope frame either fails to decode (corrupt
    /// kind/opcode/status byte) or decodes into fields that are sane to
    /// re-encode — never a panic, never an out-of-range enum.
    #[test]
    fn bit_flipped_envelope_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip_byte in 0usize..128,
        flip_bit in 0u8..8,
    ) {
        use kera::common::ids::NodeId;
        use kera::wire::frames::OpCode;

        let env = Envelope::request(
            OpCode::Fetch,
            42,
            NodeId(3),
            bytes::Bytes::from(payload),
        );
        let mut encoded = env.encode().to_vec();
        let i = flip_byte % encoded.len();
        encoded[i] ^= 1 << flip_bit;
        if let Ok(decoded) = Envelope::decode(&encoded) {
            // Whatever decoded must round-trip through encode without
            // panicking, and the re-encoding reproduces the mutant frame
            // (modulo the reserved byte, which decode ignores and encode
            // always writes as zero).
            let reencoded = decoded.encode();
            let mut expected = encoded.clone();
            expected[3] = 0;
            prop_assert_eq!(&reencoded[..], &expected[..]);
        }
    }

    /// The replicated-coordinator wire surface (DESIGN.md §10): brokers
    /// and coordinator replicas parse these off the network, so arbitrary
    /// bytes must produce `Err`, never a panic.
    #[test]
    fn meta_plane_decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        use kera::wire::meta::*;
        let _ = MetaRecord::decode(&data);
        let _ = MetaSnapshot::decode(&data);
        let _ = VoteRequest::decode(&data);
        let _ = VoteResponse::decode(&data);
        let _ = MetaAppendRequest::decode(&data);
        let _ = MetaAppendResponse::decode(&data);
        let _ = GetLeaderResponse::decode(&data);
    }

    /// A metadata-log record survives the log only if its CRC32C holds:
    /// any single bit flip anywhere in the frame must surface as a
    /// decode error (checksum or structural), never as a silently
    /// different record — the metadata log is the cluster's source of
    /// truth, so a corrupt `CreateStream` placement would be fatal.
    #[test]
    fn bit_flipped_meta_record_is_always_detected(
        node in 0u32..1000,
        index in 1u64..1_000_000,
        term in 1u64..1_000,
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        use kera::common::ids::NodeId;
        use kera::wire::meta::{MetaOp, MetaRecord};

        let rec = MetaRecord { index, term, op: MetaOp::RegisterBroker { node: NodeId(node) } };
        let mut buf = rec.encode().unwrap().to_vec();
        let i = flip_byte % buf.len();
        buf[i] ^= 1 << flip_bit;
        // A flip in the checksum field invalidates the checksum; a flip
        // in the body invalidates it too. Nothing may decode to a
        // *different* record with a passing checksum.
        if let Ok(decoded) = MetaRecord::decode(&buf) {
            prop_assert_eq!(decoded, rec, "flip at byte {} bit {} undetected", i, flip_bit);
        }
    }

    /// Truncating an encoded metadata record, snapshot or append frame
    /// at any point errors cleanly (the length prefixes and checksum
    /// bound every read).
    #[test]
    fn truncated_meta_frames_error_cleanly(
        streams in 0u32..4,
        cut_num in 0usize..10_000,
    ) {
        use kera::common::ids::NodeId;
        use kera::wire::meta::{MetaAppendRequest, MetaOp, MetaRecord, MetaSnapshot};

        let entries: Vec<MetaRecord> = (0..streams.max(1) as u64)
            .map(|k| MetaRecord {
                index: k + 1,
                term: 1,
                op: MetaOp::DeleteStream { stream: kera::common::ids::StreamId(k as u32) },
            })
            .collect();
        let req = MetaAppendRequest {
            term: 3,
            leader: NodeId(0),
            prev_index: 0,
            prev_term: 0,
            commit_index: 1,
            snapshot: Some(MetaSnapshot {
                last_index: 0,
                last_term: 0,
                brokers: vec![NodeId(1), NodeId(2)],
                dead: vec![],
                streams: vec![],
            }),
            entries,
        };
        let encoded = req.encode().unwrap();
        let cut = cut_num % encoded.len();
        // Every proper prefix must fail to decode: the frame carries
        // counts and per-record checksums, so a cut can never produce a
        // shorter-but-valid request.
        prop_assert!(MetaAppendRequest::decode(&encoded[..cut]).is_err(), "cut at {} decoded", cut);
    }

    /// The zero-copy sliced decoders (`decode_bytes`) parse untrusted
    /// input too: arbitrary bytes must produce `Err`, never a panic, and
    /// the verdict must match the seed's copying decoder byte for byte.
    #[test]
    fn sliced_decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let b = bytes::Bytes::from(data);
        prop_assert_eq!(Envelope::decode_bytes(&b).is_ok(), Envelope::decode(&b).is_ok());
        prop_assert_eq!(ProduceRequest::decode_bytes(&b).is_ok(), ProduceRequest::decode(&b).is_ok());
        prop_assert_eq!(FetchResponse::decode_bytes(&b).is_ok(), FetchResponse::decode(&b).is_ok());
        prop_assert_eq!(
            BackupWriteRequest::decode_bytes(&b).is_ok(),
            BackupWriteRequest::decode(&b).is_ok()
        );
        prop_assert_eq!(
            FollowerFetchResponse::decode_bytes(&b).is_ok(),
            FollowerFetchResponse::decode(&b).is_ok()
        );
    }

    /// A real produce request — a packed chunk train — truncated or
    /// bit-flipped anywhere: the sliced decoder and the copying decoder
    /// agree on accept/reject, and whenever both accept, they produce
    /// identical structures (the slice views the same bytes the copy
    /// owns).
    #[test]
    fn mangled_produce_request_sliced_decode_matches_copy(
        nrec in 1usize..16,
        cut_num in 0usize..10_000,
        flip_byte in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        use kera::common::ids::{ProducerId, StreamId, StreamletId};
        use kera::wire::chunk::ChunkBuilder;
        use kera::wire::record::Record;

        let mut b = ChunkBuilder::new(8192, ProducerId(3), StreamId(1), StreamletId(0));
        let payload = [0xabu8; 64];
        let chunks: Vec<bytes::Bytes> = (0..2)
            .map(|_| {
                for _ in 0..nrec {
                    assert!(b.append(&Record::value_only(&payload)));
                }
                b.seal()
            })
            .collect();
        let encoded = ProduceRequest::encode_chunks(ProducerId(3), false, &chunks);

        // Truncation anywhere.
        let cut = cut_num % (encoded.len() + 1);
        let truncated = encoded.slice(0..cut);
        match (ProduceRequest::decode(&truncated), ProduceRequest::decode_bytes(&truncated)) {
            (Ok(a), Ok(c)) => {
                prop_assert_eq!(a.producer, c.producer);
                prop_assert_eq!(a.recovery, c.recovery);
                prop_assert_eq!(a.chunk_count, c.chunk_count);
                prop_assert_eq!(&a.chunks[..], &c.chunks[..]);
            }
            (Err(_), Err(_)) => {}
            (a, c) => prop_assert!(false, "decoders disagree at cut {}: {:?} vs {:?}", cut, a.is_ok(), c.is_ok()),
        }

        // A single bit flip.
        let mut mutant = encoded.to_vec();
        let i = flip_byte % mutant.len();
        mutant[i] ^= 1 << flip_bit;
        let mutant = bytes::Bytes::from(mutant);
        match (ProduceRequest::decode(&mutant), ProduceRequest::decode_bytes(&mutant)) {
            (Ok(a), Ok(c)) => prop_assert_eq!(&a.chunks[..], &c.chunks[..]),
            (Err(_), Err(_)) => {}
            (a, c) => prop_assert!(false, "decoders disagree on flip: {:?} vs {:?}", a.is_ok(), c.is_ok()),
        }
    }

    /// Same contract for the replication path: an `EncodedBackupWrite`
    /// body truncated anywhere decodes identically through the sliced
    /// and copying decoders — the backup must never accept a batch the
    /// seed would have rejected (or vice versa).
    #[test]
    fn truncated_backup_write_sliced_decode_matches_copy(
        body in proptest::collection::vec(any::<u8>(), 0..128),
        cut_num in 0usize..10_000,
    ) {
        use kera::common::ids::{NodeId, VirtualLogId, VirtualSegmentId};

        let req = EncodedBackupWrite::pack(
            NodeId(2),
            VirtualLogId(7),
            VirtualSegmentId(11),
            640,
            backup_flags::OPEN,
            0,
            1,
            body.len(),
            std::iter::once(&body[..]),
        );
        let encoded = req.body();
        let cut = cut_num % (encoded.len() + 1);
        let truncated = encoded.slice(0..cut);
        match (BackupWriteRequest::decode(&truncated), BackupWriteRequest::decode_bytes(&truncated)) {
            (Ok(a), Ok(c)) => {
                prop_assert_eq!(a.source_broker, c.source_broker);
                prop_assert_eq!(a.vlog, c.vlog);
                prop_assert_eq!(a.vseg, c.vseg);
                prop_assert_eq!(a.vseg_offset, c.vseg_offset);
                prop_assert_eq!(a.flags, c.flags);
                prop_assert_eq!(a.chunk_count, c.chunk_count);
                prop_assert_eq!(&a.chunks[..], &c.chunks[..]);
            }
            (Err(_), Err(_)) => {}
            (a, c) => prop_assert!(false, "decoders disagree at cut {}: {:?} vs {:?}", cut, a.is_ok(), c.is_ok()),
        }
    }

    /// A record with a corrupted header either fails to parse or fails
    /// to verify — it can never silently pass.
    #[test]
    fn corrupted_record_is_always_detected(
        value in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        use kera::wire::record::Record;
        let mut buf = Vec::new();
        Record::value_only(&value).encode_into(&mut buf);
        let i = flip_byte % buf.len();
        buf[i] ^= 1 << flip_bit;
        let detected = match RecordView::parse(&buf) {
            Err(_) => true,
            Ok(v) => v.verify().is_err(),
        };
        // Flips inside the checksum field itself also change the stored
        // checksum -> verify fails. Every flip must be detected.
        prop_assert!(detected, "undetected flip at byte {i} bit {flip_bit}");
    }
}
