//! Property-based tests of the core data structures and the invariants
//! listed in `DESIGN.md` §3.

use std::sync::Arc;

use kera::common::checksum::{crc32c, Crc32c};
use kera::common::ids::*;
use kera::storage::segment::Segment;
use kera::storage::streamlet::Streamlet;
use kera::vlog::channel::MockChannel;
use kera::vlog::selector::{BackupSelector, SelectionPolicy};
use kera::vlog::vlog::VirtualLog;
use kera::vlog::vseg::ChunkRef;
use kera::wire::chunk::{ChunkBuilder, ChunkIter, ChunkView};
use kera::wire::cursor::SlotCursor;
use kera::wire::record::{Record, RecordIter, RecordView};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = (Option<u64>, Option<u64>, Vec<Vec<u8>>, Vec<u8>)> {
    (
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..4),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
}

proptest! {
    /// Invariant 6 precondition: any record round-trips losslessly and
    /// verifies.
    #[test]
    fn record_roundtrip((version, timestamp, keys, value) in arb_record()) {
        let rec = Record {
            version,
            timestamp,
            keys: keys.iter().map(|k| k.as_slice()).collect(),
            value: &value,
        };
        let mut buf = Vec::new();
        let len = rec.encode_into(&mut buf);
        prop_assert_eq!(len, rec.encoded_len());
        let view = RecordView::parse(&buf).unwrap();
        view.verify().unwrap();
        prop_assert_eq!(view.version(), version);
        prop_assert_eq!(view.timestamp(), timestamp);
        prop_assert_eq!(view.num_keys(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(view.key(i).unwrap(), k.as_slice());
        }
        prop_assert_eq!(view.value(), value.as_slice());
    }

    /// Concatenated records iterate back exactly.
    #[test]
    fn record_stream_roundtrip(values in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..128), 1..20)) {
        let mut buf = Vec::new();
        for v in &values {
            Record::value_only(v).encode_into(&mut buf);
        }
        let parsed: Vec<Vec<u8>> = RecordIter::new(&buf)
            .map(|r| r.unwrap().value().to_vec())
            .collect();
        prop_assert_eq!(parsed, values);
    }

    /// CRC32C: incremental == one-shot at any split, and resume works.
    #[test]
    fn crc_incremental(data in proptest::collection::vec(any::<u8>(), 0..512),
                       split in 0usize..512) {
        let split = split.min(data.len());
        let mut c = Crc32c::new();
        c.update(&data[..split]);
        let mid = c.finish();
        let mut r = Crc32c::resume(mid);
        r.update(&data[split..]);
        prop_assert_eq!(r.finish(), crc32c(&data));
    }

    /// Chunk building: a chunk holds exactly the appended records and
    /// survives header assignment.
    #[test]
    fn chunk_roundtrip(values in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..20)) {
        let mut b = ChunkBuilder::new(1 << 16, ProducerId(1), StreamId(2), StreamletId(3));
        for v in &values {
            prop_assert!(b.append(&Record::value_only(v)));
        }
        let sealed = b.seal();
        let mut assigned = sealed.to_vec();
        kera::wire::chunk::assign_in_place(&mut assigned, GroupId(9), SegmentId(8), 777);
        let view = ChunkView::parse(&assigned).unwrap();
        view.verify().unwrap();
        prop_assert_eq!(view.header().record_count as usize, values.len());
        prop_assert_eq!(view.header().base_offset, 777);
        let parsed: Vec<Vec<u8>> = view.records().map(|r| r.unwrap().value().to_vec()).collect();
        prop_assert_eq!(parsed, values);
    }

    /// Invariant 3: durable head never exceeds head and is monotone,
    /// under arbitrary append/ack interleavings.
    #[test]
    fn segment_durable_head_monotone(ops in proptest::collection::vec(any::<bool>(), 1..60)) {
        let gref = GroupRef::new(StreamId(1), StreamletId(0), GroupId(0));
        let seg = Segment::new(gref, SegmentId(0), 1 << 20);
        let mut chunk = ChunkBuilder::new(512, ProducerId(0), StreamId(1), StreamletId(0));
        chunk.append(&Record::value_only(&[1u8; 64]));
        let bytes = chunk.seal();
        let mut appended = Vec::new(); // chunk end offsets
        let mut acked = 0usize;
        let mut last_durable = 0usize;
        for op in ops {
            if op {
                if let Some(at) = seg.append_chunk(&bytes, 0) {
                    appended.push((at.offset + at.len) as usize);
                }
            } else if acked < appended.len() {
                seg.advance_durable(appended[acked]);
                acked += 1;
            }
            let d = seg.durable_head();
            prop_assert!(d <= seg.head());
            prop_assert!(d >= last_durable, "durable head went backwards");
            last_durable = d;
        }
    }

    /// Invariant 2: per-slot record order equals append order under
    /// arbitrary producer interleavings; reads see whole chunks only.
    #[test]
    fn streamlet_per_slot_order(
        producer_seq in proptest::collection::vec(0u32..4, 1..80),
        q in 1u32..4,
    ) {
        let config = kera::common::config::StreamConfig {
            id: StreamId(1),
            streamlets: 1,
            active_groups: q,
            segments_per_group: 2,
            segment_size: 4096,
            replication: Default::default(),
        };
        let streamlet = Streamlet::new(StreamId(1), StreamletId(0), &config);
        let mut expected: std::collections::HashMap<u32, Vec<u64>> = Default::default();
        let mut counters: std::collections::HashMap<u32, u64> = Default::default();
        for &p in &producer_seq {
            let slot = p % q;
            let seq = counters.entry(slot).or_default();
            let mut b = ChunkBuilder::new(512, ProducerId(p), StreamId(1), StreamletId(0));
            b.append(&Record::value_only(&seq.to_le_bytes()));
            let bytes = b.seal();
            let a = streamlet.append_chunk(ProducerId(p), &bytes, 1).unwrap();
            a.segment.make_all_durable();
            expected.entry(slot).or_default().push(*seq);
            *seq += 1;
        }
        for slot in 0..q {
            let mut cursor = SlotCursor::START;
            let mut got = Vec::new();
            loop {
                let (data, next) = streamlet.read_slot(slot, cursor, usize::MAX);
                if data.is_empty() {
                    break;
                }
                for chunk in ChunkIter::new(&data) {
                    let chunk = chunk.unwrap();
                    for rec in chunk.records() {
                        got.push(u64::from_le_bytes(rec.unwrap().value().try_into().unwrap()));
                    }
                }
                cursor = next;
            }
            prop_assert_eq!(&got, expected.get(&slot).map(Vec::as_slice).unwrap_or(&[]));
        }
    }

    /// Invariants 1 & 3 on the virtual log: after any append/sync
    /// sequence, durable == appended, every physical byte below a chunk
    /// end, and replication batches carry whole chunks.
    #[test]
    fn vlog_sync_covers_all_appends(lens in proptest::collection::vec(10usize..200, 1..40),
                                    vseg_capacity in 300usize..2000) {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let selector = BackupSelector::new(NodeId(0), &nodes, SelectionPolicy::RoundRobin, 1);
        let gref = GroupRef::new(StreamId(1), StreamletId(0), GroupId(0));
        let seg = Arc::new(Segment::new(gref, SegmentId(0), 1 << 20));
        let vlog = VirtualLog::new(VirtualLogId(0), NodeId(0), vseg_capacity.max(400), 2, selector).unwrap();
        let channel = MockChannel::new();
        let mut last_ticket = 0;
        for len in &lens {
            let mut b = ChunkBuilder::new(400, ProducerId(0), StreamId(1), StreamletId(0));
            let payload = vec![3u8; (*len).min(300)];
            b.append(&Record::value_only(&payload));
            let bytes = b.seal();
            let at = seg.append_chunk(&bytes, 0).unwrap();
            last_ticket = vlog.append(ChunkRef {
                segment: Arc::clone(&seg),
                offset: at.offset,
                len: at.len,
                checksum: ChunkView::parse(&bytes).unwrap().header().checksum,
                gref,
            }).unwrap();
        }
        vlog.sync(&channel, last_ticket).unwrap();
        prop_assert_eq!(vlog.durable(), vlog.appended());
        prop_assert_eq!(seg.durable_head(), seg.head());
        // Every replicated batch parses into whole, valid chunks.
        for (_, req) in channel.batches.lock().iter() {
            let mut count = 0;
            for chunk in ChunkIter::new(&req.chunks) {
                chunk.unwrap().verify().unwrap();
                count += 1;
            }
            prop_assert_eq!(count, req.chunk_count);
        }
    }

    /// Backup selection: distinct, never local, correct count.
    #[test]
    fn selector_properties(fleet in 2u32..10, copies in 0usize..4, seed in any::<u64>()) {
        let nodes: Vec<NodeId> = (0..fleet).map(NodeId).collect();
        for policy in [SelectionPolicy::RoundRobin, SelectionPolicy::RandomDistinct] {
            let mut sel = BackupSelector::new(NodeId(0), &nodes, policy, seed);
            let available = (fleet - 1) as usize;
            let result = sel.select(copies);
            if copies > available {
                prop_assert!(result.is_err());
            } else {
                let picks = result.unwrap();
                prop_assert_eq!(picks.len(), copies);
                let set: std::collections::HashSet<_> = picks.iter().collect();
                prop_assert_eq!(set.len(), copies);
                prop_assert!(!picks.contains(&NodeId(0)));
            }
        }
    }

    /// Slot cursors: group-id derivation is a bijection per slot chain.
    #[test]
    fn cursor_group_ids_disjoint(q in 1u32..8, chains in 1u32..16) {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..q {
            let mut cursor = SlotCursor::START;
            for _ in 0..chains {
                prop_assert!(seen.insert(cursor.group_id(slot, q)));
                cursor = cursor.next_group();
            }
        }
        prop_assert_eq!(seen.len() as u32, q * chains);
    }
}
