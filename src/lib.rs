//! # kera — virtual log-structured stream storage
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! architecture overview and `DESIGN.md` for the paper-to-module map.

pub use kera_broker as broker;
pub use kera_client as client;
pub use kera_common as common;
pub use kera_harness as harness;
pub use kera_kafka_sim as kafka_sim;
pub use kera_recovery as recovery;
pub use kera_rpc as rpc;
pub use kera_storage as storage;
pub use kera_vlog as vlog;
pub use kera_wire as wire;
