#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Concurrency/robustness analyzer: non-zero exit on any finding.
cargo run -q -p kera-lint

# Dynamic lock-order checking: the shim's own lockdep suite, then the
# chaos + invariants suites with every lock acquisition instrumented.
# The chaos run arms the flight recorder: a panic or chaos failure dumps
# each node's recent-event ring under results/tmp/flightrec/<run>/.
(cd crates/shims/parking_lot && cargo test -q --features deadlock-detect)
if ! KERA_FLIGHTREC=1 cargo test -q --features deadlock-detect --test chaos --test invariants; then
  echo "chaos/invariants failed — flight recorder dumps:" >&2
  ls results/tmp/flightrec/*/flightrec-*.json >&2 2>/dev/null || echo "  (none recorded)" >&2
  exit 1
fi

# Coordinator failover drills (DESIGN.md §10), run by name so a refactor
# that renames or drops them fails loudly instead of silently shrinking
# the chaos surface: leader killed / frozen / partitioned mid-ingest,
# with the flight recorder armed so a failed election window dumps each
# replica's last moments.
if ! KERA_FLIGHTREC=1 cargo test -q --test chaos -- --exact \
    coordinator_leader_kill_fails_over_without_metadata_loss \
    coordinator_frozen_leader_is_deposed_and_steps_down_on_thaw \
    coordinator_partitioned_leader_abdicates_and_rejoins; then
  echo "coordinator failover drills failed — flight recorder dumps:" >&2
  ls results/tmp/flightrec/*/flightrec-*.json >&2 2>/dev/null || echo "  (none recorded)" >&2
  exit 1
fi

# Overload chaos drills (DESIGN.md §11), run by name for the same
# reason: the 10:1 abusive-tenant storm (polite-throughput floor +
# degradation ladder), the slow-consumer pile-up, and quota flapping
# mid-ingest. Each asserts the bounded-memory gate — the admission
# queue's high-water mark never exceeds `admission_queue_bytes` on any
# broker — plus exactly-once delivery of every acked record. The flight
# recorder is armed so a failed drill dumps per-node quota events
# (QuotaThrottle/QuotaReject/QuotaEvict stages).
if ! KERA_FLIGHTREC=1 cargo test -q --test chaos -- --exact \
    overload_polite_tenants_keep_throughput_floor \
    slow_consumer_pileup_keeps_broker_bounded \
    quota_flapping_mid_ingest_preserves_exactly_once; then
  echo "overload drills failed — flight recorder dumps:" >&2
  ls results/tmp/flightrec/*/flightrec-*.json >&2 2>/dev/null || echo "  (none recorded)" >&2
  exit 1
fi

# Introspection plane smoke (DESIGN.md §13): boot a real 3-broker /
# 3-replica cluster on loopback TCP, scrape every node over the wire
# with the Introspect opcode, and require each one to report health
# (role, term, lag, quota ladder, in-flight). Non-zero exit if any node
# is unreachable — the watchdog chaos drill above already covers the
# stall-dump path.
cargo run -q --release -p kera-inspect -- health --brokers 3 --replicas 3

# Observability overhead smoke check: a quick fig08-style point with
# tracing on must stay within the budget (default 5%) of the same point
# with tracing off. KERA_OBS_TOLERANCE_PCT overrides the budget.
KERA_WARMUP_MS=300 KERA_MEASURE_MS=1200 cargo run -q --release -p kera-harness --bin obs_overhead

# Perf-trajectory bench smoke: re-measures the copy data plane
# (KERA_COPY_DATA_PLANE=1) against the zero-copy data plane in child
# processes and fails if any speedup falls below its gate (append
# >= 1.20x, replication >= 1.05x, e2e >= 0.85x). Smoke runs write to
# results/tmp/ — the pinned repo-root BENCH_*.json files are only
# rewritten by an explicit `perf_trajectory --pin`.
cargo run -q --release -p kera-bench --bin perf_trajectory
