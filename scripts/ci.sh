#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Concurrency/robustness analyzer: non-zero exit on any finding.
cargo run -q -p kera-lint

# Dynamic lock-order checking: the shim's own lockdep suite, then the
# chaos + invariants suites with every lock acquisition instrumented.
(cd crates/shims/parking_lot && cargo test -q --features deadlock-detect)
cargo test -q --features deadlock-detect --test chaos --test invariants
