#!/usr/bin/env python3
"""Summarizes results/figNN.tsv into the paper-shape checks that
EXPERIMENTS.md records. Usage: python3 scripts/summarize_results.py [results_dir]."""
import csv
import sys
from collections import defaultdict
from pathlib import Path


def load(path):
    rows = []
    with open(path) as f:
        for row in csv.DictReader(f, delimiter="\t"):
            row["mrps"] = float(row["mrecords_per_sec"])
            rows.append(row)
    return rows


def by_series(rows):
    out = defaultdict(dict)
    for r in rows:
        out[r["series"]][r["x"]] = r["mrps"]
    return out


def ratio(a, b):
    return a / b if b > 0 else float("inf")


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    figs = {p.stem: by_series(load(p)) for p in sorted(results.glob("fig*.tsv"))}

    for fig, series in figs.items():
        print(f"\n== {fig} ==")
        for name, pts in sorted(series.items()):
            line = "  ".join(f"{x}:{v:.3f}" for x, v in pts.items())
            print(f"  {name:<16} {line}")

    # Headline shape checks.
    print("\n== shape checks ==")
    if "fig08" in figs:
        f = figs["fig08"]
        for x in f.get("KerA R3", {}):
            k, ka = f["KerA R3"].get(x, 0), f["Kafka R3"].get(x, 0)
            print(f"fig08 R3 @{x} streams: KerA/Kafka = {ratio(k, ka):.2f}x")
    if "fig10" in figs:
        f = figs["fig10"]
        for x in f.get("KerA 4 vlogs", {}):
            k, ka = f["KerA 4 vlogs"].get(x, 0), f["Kafka"].get(x, 0)
            print(f"fig10 @{x} streams: KerA-4vlog/Kafka = {ratio(k, ka):.2f}x")
    if "fig11" in figs:
        f = figs["fig11"]
        for x in f.get("KerA", {}):
            print(f"fig11 @{x}: KerA/Kafka = {ratio(f['KerA'][x], f['Kafka'].get(x, 0)):.2f}x")
    if "fig13" in figs:
        f = figs["fig13"]
        for x in f.get("1 vlogs", {}):
            r = ratio(f.get("4 vlogs", {}).get(x, 0), f["1 vlogs"][x])
            print(f"fig13 @{x} streams: 4vlogs/1vlog = {r:.2f}x")
    for fig in ("fig14", "fig15", "fig16"):
        if fig in figs and "R3" in figs[fig]:
            pts = figs[fig]["R3"]
            xs = sorted(pts, key=lambda v: int(v))
            best = max(pts.values())
            last = pts[xs[-1]]
            print(f"{fig} R3: best {best:.3f}, at max vlogs {last:.3f} "
                  f"(drop {100 * (1 - last / best):.0f}%)")
    for fig in ("fig17", "fig18", "fig19", "fig20"):
        if fig in figs and "R3" in figs[fig]:
            pts = figs[fig]["R3"]
            print(f"{fig} R3 by chunk: " + "  ".join(f"{x}:{v:.3f}" for x, v in pts.items()))
    if "fig21" in figs:
        for name, pts in figs["fig21"].items():
            print(f"fig21 {name}: " + "  ".join(f"{x}:{v:.3f}" for x, v in sorted(
                pts.items(), key=lambda kv: int(kv[0]))))


if __name__ == "__main__":
    main()
