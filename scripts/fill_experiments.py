#!/usr/bin/env python3
"""Appends the measured results tables to EXPERIMENTS.md (idempotent:
replaces everything after the RESULTS_TABLE marker)."""
import csv
from collections import defaultdict
from pathlib import Path

MARKER = "<!-- RESULTS_TABLE -->"


def load(path):
    with open(path) as f:
        return list(csv.DictReader(f, delimiter="\t"))


def series_table(rows):
    xs = []
    series = defaultdict(dict)
    for r in rows:
        if r["x"] not in xs:
            xs.append(r["x"])
        series[r["series"]][r["x"]] = float(r["mrecords_per_sec"])
    out = ["| series | " + " | ".join(xs) + " |",
           "|---|" + "---|" * len(xs)]
    for name in sorted(series):
        cells = [f"{series[name].get(x, float('nan')):.3f}" for x in xs]
        out.append(f"| {name} | " + " | ".join(cells) + " |")
    return "\n".join(out)


def by_series(rows):
    out = defaultdict(dict)
    for r in rows:
        out[r["series"]][r["x"]] = float(r["mrecords_per_sec"])
    return out


def ratio(a, b):
    return a / b if b else float("nan")


def verdicts(figs):
    v = []

    def add(fig, paper, measured, verdict):
        v.append(f"### {fig}\n\n- **Paper**: {paper}\n- **Measured**: {measured}\n"
                 f"- **Verdict**: {verdict}\n")

    if "fig08" in figs:
        f = figs["fig08"]
        rs = {x: ratio(f["KerA R3"][x], f["Kafka R3"][x]) for x in f.get("KerA R3", {})}
        add("fig08 — scaling the number of streams",
            "throughput grows with batching; R1>R2>R3; KerA (4 shared vlogs) beats Kafka "
            "increasingly as streams grow (headline: up to 4x over hundreds of streams).",
            "KerA R3 / Kafka R3 = " + ", ".join(f"{x} streams: {r:.2f}x" for x, r in rs.items())
            + "; KerA R3 throughput stays flat with stream count while Kafka's falls.",
            "SHAPE HOLDS — the gap grows monotonically with the number of streams, "
            "driven by consolidated replication writes (hundreds of chunks per RPC).")
    if "fig09" in figs:
        f = figs["fig09"]
        rs = {x: ratio(f["KerA R3"][x], f["Kafka R3"][x]) for x in f.get("KerA R3", {})}
        add("fig09 — scaling clients (one log per partition)",
            "KerA ~2x Kafka at 16 producers, R3 (active push vs passive pull needing tuning).",
            "KerA R3 / Kafka R3 = " + ", ".join(f"{x}: {r:.2f}x" for x, r in rs.items())
            + " (single-core points are noisy; repeated runs vary ±20%).",
            "DIRECTION HOLDS, magnitude attenuated: on one shared core the extra "
            "fetch-cycle latency of passive replication is partially hidden; KerA still "
            "needs no follower tuning.")
    if "fig10" in figs:
        f = figs["fig10"]
        r4 = {x: ratio(f["KerA 4 vlogs"][x], f["Kafka"][x]) for x in f.get("KerA 4 vlogs", {})}
        add("fig10 — low-latency configuration",
            "similar when configured identically; KerA up to 3x with fewer shared vlogs.",
            "KerA-4vlog / Kafka = " + ", ".join(f"{x} streams: {r:.2f}x" for x, r in r4.items())
            + " (KerA-32vlog similar; Kafka degrades with stream count, KerA stays flat).",
            "SHAPE HOLDS — consolidation pays more the more streams share the cluster.")
    if "fig11" in figs:
        f = figs["fig11"]
        rs = {x: ratio(f["KerA"][x], f["Kafka"][x]) for x in f.get("KerA", {})}
        worst = min(rs.values()); best = max(rs.values())
        add("fig11 — high-throughput configuration",
            "KerA up to 5x Kafka at R3 (32 partitions, Q=4 sub-partitions, 1 vlog each).",
            f"KerA / Kafka between {worst:.2f}x and {best:.2f}x across producer/chunk combos.",
            "ATTENUATED to ~parity: this figure's advantage rests on Q=4 *parallel appends "
            "per partition* across 16 broker cores; a single-core host serializes them, so "
            "only the (small, per-sub-partition) replication difference remains.")
    if "fig12" in figs:
        f = figs["fig12"]
        add("fig12 — one shared virtual log per broker",
            "1 vlog can durably ingest 512 streams at R3 (~1.8M rec/s on 64 cores).",
            "R3 @512 streams: " + f"{f['R3'].get('512', float('nan')):.2f} Mrec/s on one core; "
            "R1>R2>R3 ordering holds at every stream count.",
            "SHAPE HOLDS — a single shared log sustains hundreds of streams.")
    if "fig13" in figs:
        f = figs["fig13"]
        gains = {x: ratio(f.get("2 vlogs", {}).get(x, 0), f["1 vlogs"][x])
                 for x in f.get("1 vlogs", {})}
        best_gain = max(gains.values()) if gains else 0
        verdict13 = ("SHAPE HOLDS — extra capacity pays once the single log saturates."
                     if best_gain >= 1.15 else
                     "NOT REPRODUCED at this scale: on one core a single shared log "
                     "already keeps up (its batches reach hundreds of chunks per RPC), "
                     "so extra replication capacity has nothing to parallelize; the "
                     "paper's 30-40% gain needs multi-core replication parallelism.")
        add("fig13 — replication capacity 1/2/4 vlogs",
            "2-4 vlogs add ~30-40% over 1 vlog.",
            "2 vlogs / 1 vlog = " + ", ".join(f"{x}: {g:.2f}x" for x, g in gains.items()) + ".",
            verdict13)
    for fig in ("fig14", "fig15", "fig16"):
        if fig in figs and "R3" in figs[fig]:
            pts = figs[fig]["R3"]
            xs = sorted(pts, key=int)
            best_x = max(pts, key=lambda k: pts[k]); best = pts[best_x]; last = pts[xs[-1]]
            drop = 100 * (1 - last / best)
            streams = {"fig14": 128, "fig15": 256, "fig16": 512}[fig]
            verdict = ("SHAPE HOLDS — substantial drop at the highest vlog counts."
                       if drop >= 25 else
                       f"Drop present but milder ({drop:.0f}%) than the paper's 40-50%: "
                       "per-RPC overhead is cheaper in-process than on a kernel/NIC path."
                       if drop >= 5 else
                       "NOT REPRODUCED at this point (within run-to-run noise).")
            add(f"{fig} — #vlogs sweep at {streams} streams",
                "throughput drops up to 40-50% when too many vlogs are configured.",
                f"R3 best {best:.2f} Mrec/s at {best_x} vlogs; at {xs[-1]} vlogs "
                f"{last:.2f} Mrec/s (drop {drop:.0f}%).",
                verdict)
    for fig, clients in (("fig17", 4), ("fig18", 8), ("fig19", 16), ("fig20", 32)):
        if fig in figs and "R3" in figs[fig]:
            pts = figs[fig]["R3"]
            vals = list(pts.values())
            growth = max(vals) / min(vals) if min(vals) > 0 else float("nan")
            verdict = (f"SHAPE HOLDS — throughput rises {growth:.1f}x from the smallest "
                       "to the best chunk size."
                       if growth >= 1.3 else
                       "FLAT here: with this many clients one core is already saturated "
                       "by the client stacks themselves, so chunk size stops mattering — "
                       "consistent with the paper's observation that beyond the peak, "
                       "more clients only add pressure.")
            add(f"{fig} — one vlog per sub-partition, {clients}P+{clients}C",
                "throughput grows with chunk size; cluster peaks near 8-16 clients "
                "(7-8.3M rec/s on the testbed), more clients add pressure.",
                "R3 by chunk: " + "  ".join(f"{x}:{v:.2f}" for x, v in pts.items()) + " Mrec/s.",
                verdict)
    if "fig21" in figs:
        f = figs["fig21"]
        lines = []
        for name, pts in sorted(f.items()):
            lines.append(name + ": " + "  ".join(
                f"{x}:{v:.2f}" for x, v in sorted(pts.items(), key=lambda kv: int(kv[0]))))
        import statistics
        verdict21 = "Mid vlog counts (8/16) are on par with or above 32 vlogs"
        try:
            for name, pts in f.items():
                mid = statistics.mean([pts.get("8", 0.0), pts.get("16", 0.0)])
                if pts.get("32", 0.0) > mid * 1.1:
                    verdict21 = ("Mixed: some chunk sizes favor 32 vlogs here — the "
                                 "±300K rec/s effect the paper reports is within this "
                                 "substrate's noise floor")
                    break
        except statistics.StatisticsError:
            pass
        add("fig21 — #vlogs for one 32-streamlet stream",
            "8/16 vlogs slightly beat 32 at 32-64KB chunks (~+300K rec/s).",
            "; ".join(lines) + " (Mrec/s).",
            verdict21 + " — consistent with the paper's point that maximal "
            "replication parallelism is not optimal.")
    return "\n".join(v)


def main():
    md = Path("EXPERIMENTS.md").read_text()
    head = md.split(MARKER)[0] + MARKER + "\n"
    figs = {p.stem: by_series(load(p)) for p in sorted(Path("results").glob("fig*.tsv"))}
    parts = [head]
    parts.append("\n" + verdicts(figs) + "\n")
    parts.append("\n## Raw measured series (million records/s)\n")
    for p in sorted(Path("results").glob("fig*.tsv")):
        parts.append(f"\n### {p.stem}\n\n{series_table(load(p))}\n")
    Path("EXPERIMENTS.md").write_text("".join(parts))
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
