//! Quickstart: boot an in-process KerA cluster, create a replicated
//! stream, produce a batch of records and consume them back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use kera::broker::KeraCluster;
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera::common::ids::{ProducerId, StreamId};

fn main() -> kera::common::Result<()> {
    // 1. A 4-broker cluster; each node runs a broker and a backup
    //    service, like the paper's Grid5000 deployment.
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 2,
        ..ClusterConfig::default()
    })?;

    // 2. A stream with 4 streamlets, replication factor 3, replicated
    //    through 4 shared virtual logs per broker.
    let admin_rt = cluster.client(0);
    let admin = MetadataClient::new(admin_rt.client(), cluster.coordinator());
    let metadata = admin.create_stream(StreamConfig {
        id: StreamId(1),
        streamlets: 4,
        active_groups: 1,
        segments_per_group: 16,
        segment_size: 1 << 20,
        replication: ReplicationConfig {
            factor: 3,
            policy: VirtualLogPolicy::SharedPerBroker(4),
            vseg_size: 1 << 20,
        },
    })?;
    println!("created stream 1: {} streamlets over {} brokers", metadata.placements.len(), metadata.brokers().len());

    // 3. Produce 100k records of 100 bytes.
    let prod_rt = cluster.client(1);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 16 * 1024, ..ProducerConfig::default() },
    )?;
    let n = 100_000u64;
    let payload = [42u8; 100];
    let started = std::time::Instant::now();
    for _ in 0..n {
        producer.send(StreamId(1), &payload)?;
    }
    producer.flush()?;
    let elapsed = started.elapsed();
    println!(
        "produced {n} records in {elapsed:?} ({:.2} Mrec/s, every record on 3 replicas)",
        n as f64 / elapsed.as_secs_f64() / 1e6
    );

    // 4. Consume them back (only durably replicated data is visible).
    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig::default(),
    )?;
    let mut consumed = 0u64;
    while consumed < n {
        consumed += consumer.poll_count(Duration::from_millis(100))?;
    }
    println!("consumed {consumed} records — done");

    producer.close()?;
    consumer.close();
    cluster.shutdown();
    Ok(())
}
