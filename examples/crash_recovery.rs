//! Crash a broker, recover its durably-acknowledged data from the
//! backups, and verify nothing was lost (paper §III: "for durability
//! (data is never lost in case of failures), each virtual log can be
//! recovered in parallel over many brokers").
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::time::Duration;

use kera::broker::cluster::broker_node;
use kera::broker::KeraCluster;
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera::common::ids::{ProducerId, StreamId};
use kera::recovery::{RecoveryConfig, RecoveryManager};

fn main() -> kera::common::Result<()> {
    let mut cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 3,
        ..ClusterConfig::default()
    })?;
    let admin_rt = cluster.client(0);
    let admin = MetadataClient::new(admin_rt.client(), cluster.coordinator());
    admin.create_stream(StreamConfig {
        id: StreamId(1),
        streamlets: 8,
        active_groups: 1,
        segments_per_group: 4,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor: 3,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    })?;

    // Produce 50k sequence-tagged records (every ack means 3 copies).
    let prod_rt = cluster.client(1);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 1024, ..ProducerConfig::default() },
    )?;
    let n = 50_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes())?;
    }
    producer.flush()?;
    producer.close()?;
    println!("produced and acknowledged {n} records (R3)");

    // Kill server 0: its broker AND its co-located backup vanish.
    cluster.crash_server(0);
    println!("crashed server 0 (broker + backup)");

    // Recover from the surviving backups.
    let rec_rt = cluster.client(2);
    let manager = RecoveryManager::new(
        rec_rt.client(),
        cluster.coordinator(),
        cluster.backups(),
        RecoveryConfig::default(),
    );
    let report = manager.recover(broker_node(0))?;
    println!(
        "recovery: {} streamlets reassigned, {} virtual segments read, \
         {} chunks / {} records replayed in {:?}",
        report.reassigned_streamlets,
        report.vsegs_read,
        report.chunks_replayed,
        report.records_recovered,
        report.duration
    );

    // Verify: a fresh consumer sees every record exactly once.
    let cons_rt = cluster.client(3);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig::default(),
    )?;
    let mut seen = vec![false; n as usize];
    let mut count = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while count < n && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        batch.for_each_record(|_, rec| {
            let v = u64::from_le_bytes(rec.value().try_into().unwrap()) as usize;
            assert!(!seen[v], "duplicate record {v}");
            seen[v] = true;
            count += 1;
        })?;
    }
    assert_eq!(count, n, "lost {} records", n - count);
    println!("verified: all {n} acknowledged records survived the crash, no duplicates");
    consumer.close();
    cluster.shutdown();
    Ok(())
}
