//! Reading at arbitrary offsets: the lightweight offset index (paper
//! §IV) translates logical record offsets to physical cursors, and
//! saved positions let a consumer resume exactly where another stopped.
//!
//! ```sh
//! cargo run --release --example offset_seek
//! ```

use std::time::Duration;

use kera::broker::KeraCluster;
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera::common::ids::{ProducerId, StreamId};

fn main() -> kera::common::Result<()> {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 2,
        ..ClusterConfig::default()
    })?;
    let rt = cluster.client(0);
    let meta = MetadataClient::new(rt.client(), cluster.coordinator());
    meta.create_stream(StreamConfig {
        id: StreamId(1),
        streamlets: 1,
        active_groups: 1,
        segments_per_group: 8,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor: 3,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    })?;

    // 100k sequence-numbered records.
    let producer = Producer::new(
        &meta,
        &[StreamId(1)],
        ProducerConfig { id: ProducerId(0), chunk_size: 1024, ..ProducerConfig::default() },
    )?;
    let n = 100_000u64;
    for i in 0..n {
        producer.send(StreamId(1), &i.to_le_bytes())?;
    }
    producer.flush()?;
    producer.close()?;
    println!("produced {n} records");

    // Jump straight to record offset 90,000 — the broker's per-chunk
    // offset index resolves the covering chunk in O(log chunks).
    let target = 90_000u64;
    let sub = Subscription::from_offset(&meta, StreamId(1), target)?;
    let consumer = Consumer::new(&meta, &[sub], ConsumerConfig::default())?;
    let mut first = None;
    let mut count = 0u64;
    while count < n - target {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        batch.for_each_record(|_, rec| {
            let v = u64::from_le_bytes(rec.value().try_into().unwrap());
            if first.is_none() {
                first = Some(v);
            }
            count += 1;
        })?;
    }
    println!(
        "seeked to offset {target}: first record seen = {} (chunk-aligned), read {count} records to the tail",
        first.unwrap()
    );

    // Save positions mid-read and resume with a different consumer.
    let positions = consumer.positions();
    consumer.close();
    let resumed = Consumer::new(
        &meta,
        &[Subscription::resume(StreamId(1), positions)],
        ConsumerConfig::default(),
    )?;
    let more = resumed.poll_count(Duration::from_millis(300))?;
    println!("resumed consumer saw {more} further records (0 = it was fully caught up)");
    resumed.close();
    cluster.shutdown();
    Ok(())
}
