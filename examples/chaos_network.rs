//! Chaos demo: run the full produce → replicate → consume pipeline over
//! a deliberately lossy network — drops, duplicates, delays and a
//! transient partition — and watch the RPC plane's retries, same-id
//! retransmissions and at-most-once dedup deliver every record anyway.
//!
//! ```sh
//! cargo run --release --example chaos_network
//! ```

use std::time::Duration;

use kera::broker::cluster::{backup_node, broker_node, KeraCluster};
use kera::client::consumer::{Consumer, ConsumerConfig, Subscription};
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{
    ClusterConfig, FaultProfile, ReplicationConfig, RetryPolicy, StreamConfig, VirtualLogPolicy,
};
use kera::common::ids::{ConsumerId, ProducerId, StreamId};

fn main() -> kera::common::Result<()> {
    // A 3-broker cluster whose fabric drops 5% of messages, duplicates
    // 2%, and delays 10% by up to 2 ms — on every link, deterministically
    // seeded. The retry policy retransmits every 250 ms under a 10 s
    // budget.
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 3,
        worker_threads: 4,
        faults: Some(FaultProfile {
            seed: 42,
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            delay_rate: 0.10,
            max_delay: Duration::from_millis(2),
        }),
        retry: RetryPolicy {
            max_attempts: 40,
            attempt_timeout: Duration::from_millis(250),
            ..RetryPolicy::default()
        },
        ..ClusterConfig::default()
    })?;

    let admin_rt = cluster.client(0);
    let admin = MetadataClient::new(admin_rt.client(), cluster.coordinator());
    admin.create_stream(StreamConfig {
        id: StreamId(1),
        streamlets: 4,
        active_groups: 1,
        segments_per_group: 8,
        segment_size: 1 << 16,
        replication: ReplicationConfig {
            factor: 2,
            policy: VirtualLogPolicy::SharedPerBroker(2),
            vseg_size: 1 << 16,
        },
    })?;

    let prod_rt = cluster.client(1);
    let meta_p = MetadataClient::new(prod_rt.client(), cluster.coordinator());
    let producer = Producer::new(
        &meta_p,
        &[StreamId(1)],
        ProducerConfig {
            id: ProducerId(0),
            chunk_size: 512,
            linger: Duration::from_millis(1),
            ..ProducerConfig::default()
        },
    )?;

    let n = 3_000u64;
    let mut value = [0u8; 64];
    println!("producing {n} records through the lossy fabric...");
    let t0 = std::time::Instant::now();
    for i in 0..n {
        value[..8].copy_from_slice(&i.to_le_bytes());
        producer.send(StreamId(1), &value)?;
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Mid-run: black-hole every broker→backup link for 1.2 s.
        // Replication stalls cluster-wide; the producer's flush below
        // rides it out via same-id retransmission.
        if i == n / 2 {
            let plan = cluster.fault_plan().expect("faults configured").clone();
            for b in 0..3 {
                for k in 0..3 {
                    plan.partition(broker_node(b), backup_node(k));
                }
            }
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(1200));
                plan.heal_all();
                println!("  [partition healed]");
            });
            println!("  [partitioned all brokers from all backups @ {:?}]", t0.elapsed());
        }
    }
    println!("  [send loop done @ {:?}]", t0.elapsed());
    producer.flush()?;
    println!("  [flush done @ {:?}]", t0.elapsed());
    let failed = producer.failed_requests();
    producer.close()?;

    let cons_rt = cluster.client(2);
    let meta_c = MetadataClient::new(cons_rt.client(), cluster.coordinator());
    let consumer = Consumer::new(
        &meta_c,
        &[Subscription::whole_stream(StreamId(1))],
        ConsumerConfig { id: ConsumerId(0), ..ConsumerConfig::default() },
    )?;
    let mut seen = Vec::with_capacity(n as usize);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (seen.len() as u64) < n && std::time::Instant::now() < deadline {
        let Some(batch) = consumer.next_batch(Duration::from_millis(100)) else { continue };
        batch.for_each_record(|_, rec| {
            seen.push(u64::from_le_bytes(rec.value()[..8].try_into().unwrap()));
        })?;
    }
    consumer.close();

    let plan = cluster.fault_plan().unwrap();
    println!(
        "fabric injected: {} dropped, {} duplicated, {} delayed, {} black-holed",
        plan.dropped(),
        plan.duplicated(),
        plan.delayed(),
        plan.blocked(),
    );
    seen.sort_unstable();
    seen.dedup();
    println!(
        "consumed {} distinct records of {n} produced ({} producer requests failed)",
        seen.len(),
        failed,
    );
    assert_eq!(seen.len() as u64, n, "lost or duplicated records");
    assert_eq!(failed, 0, "producer exhausted retries");
    println!("no loss, no duplication — retries + at-most-once dedup held");
    cluster.shutdown();
    Ok(())
}
