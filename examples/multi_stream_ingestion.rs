//! The paper's motivating workload: hundreds of small streams ingested
//! durably through a handful of shared virtual logs (paper §I, Fig. 12).
//!
//! Four producers write over 128 one-partition streams with replication
//! factor 3; per-second cluster throughput is printed live, followed by
//! the replication consolidation statistics that explain the virtual
//! log's advantage: hundreds of partitions replicated with a few large
//! RPCs instead of thousands of tiny ones.
//!
//! ```sh
//! cargo run --release --example multi_stream_ingestion
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kera::broker::KeraCluster;
use kera::client::producer::{Producer, ProducerConfig};
use kera::client::MetadataClient;
use kera::common::config::{ClusterConfig, ReplicationConfig, StreamConfig, VirtualLogPolicy};
use kera::common::ids::{ProducerId, StreamId};

const STREAMS: u32 = 128;
const PRODUCERS: u32 = 4;
const SECONDS: u64 = 5;

fn main() -> kera::common::Result<()> {
    let cluster = KeraCluster::start(ClusterConfig {
        brokers: 4,
        worker_threads: 3,
        ..ClusterConfig::default()
    })?;
    let admin_rt = cluster.client(100);
    let admin = MetadataClient::new(admin_rt.client(), cluster.coordinator());
    let streams: Vec<StreamId> = (1..=STREAMS).map(StreamId).collect();
    for &s in &streams {
        admin.create_stream(StreamConfig {
            id: s,
            streamlets: 1,
            active_groups: 1,
            segments_per_group: 16,
            segment_size: 1 << 20,
            replication: ReplicationConfig {
                factor: 3,
                // The replication-capacity dial: all 128 streams share 4
                // virtual logs per broker.
                policy: VirtualLogPolicy::SharedPerBroker(4),
                vseg_size: 1 << 20,
            },
        })?;
    }
    println!("{STREAMS} streams created, replication factor 3, 4 shared virtual logs per broker");

    let stop = Arc::new(AtomicBool::new(false));
    let mut producers = Vec::new();
    let mut rts = Vec::new();
    for p in 0..PRODUCERS {
        let rt = cluster.client(p);
        let meta = MetadataClient::new(rt.client(), cluster.coordinator());
        producers.push(Arc::new(Producer::new(
            &meta,
            &streams,
            ProducerConfig {
                id: ProducerId(p),
                chunk_size: 1024, // latency-optimized: small chunks
                linger: Duration::from_millis(1),
                ..ProducerConfig::default()
            },
        )?));
        rts.push(rt);
    }
    let sources: Vec<_> = producers
        .iter()
        .map(|producer| {
            let producer = Arc::clone(producer);
            let streams = streams.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let payload = [7u8; 100];
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let s = streams[i % streams.len()];
                    i += 1;
                    if producer.send(s, &payload).is_err() {
                        break;
                    }
                }
            })
        })
        .collect();

    for p in &producers {
        p.metrics().start_window();
    }
    for sec in 1..=SECONDS {
        std::thread::sleep(Duration::from_secs(1));
        let rate: f64 = producers.iter().filter_map(|p| p.metrics().rates().map(|(r, _)| r)).sum();
        println!("t={sec}s  cluster ingestion: {:.3} Mrec/s (cumulative avg)", rate / 1e6);
    }
    stop.store(true, Ordering::SeqCst);
    for s in sources {
        let _ = s.join();
    }

    // Replication consolidation: how many chunks each replication RPC
    // carried, per broker.
    println!("\nreplication consolidation (the virtual log effect):");
    for (i, b) in cluster.broker_svcs.iter().enumerate() {
        let (batches, chunks, bytes) = b.vlogs().replication_stats();
        if batches > 0 {
            println!(
                "  broker {i}: {chunks} chunks in {batches} replication RPCs \
                 ({:.1} chunks/RPC, {:.1} KB/RPC) across {} virtual logs",
                chunks as f64 / batches as f64,
                bytes as f64 / batches as f64 / 1024.0,
                b.vlogs().log_count(),
            );
        }
    }
    for p in producers {
        if let Ok(p) = Arc::try_unwrap(p) {
            let _ = p.close();
        }
    }
    cluster.shutdown();
    Ok(())
}
