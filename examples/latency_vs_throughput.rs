//! The chunk-size / linger trade-off (paper §II-B: "the chunk size, the
//! request size, the timeout and the number of parallel producer requests
//! are chosen such that the latency is minimized under a certain
//! threshold while maximizing the throughput").
//!
//! Sweeps chunk size and linger on a fixed R3 cluster and prints the
//! resulting throughput and mean request latency.
//!
//! ```sh
//! cargo run --release --example latency_vs_throughput
//! ```

use std::time::Duration;

use kera::harness::experiment::{run_experiment, ExperimentConfig};

fn main() -> kera::common::Result<()> {
    println!(
        "{:>9} {:>10} {:>12} {:>14} {:>14}",
        "chunk", "linger", "Mrec/s", "req-lat(us)", "consolidation"
    );
    for &chunk_kb in &[1usize, 4, 16, 64] {
        for &linger_us in &[100u64, 1_000, 10_000] {
            let cfg = ExperimentConfig {
                producers: 4,
                consumers: 4,
                streams: 16,
                streamlets_per_stream: 1,
                chunk_size: chunk_kb * 1024,
                linger: Duration::from_micros(linger_us),
                replication_factor: 3,
                warmup: Duration::from_millis(400),
                measure: Duration::from_millis(1200),
                ..ExperimentConfig::default()
            };
            let m = run_experiment(&cfg)?;
            println!(
                "{:>7}KB {:>8}us {:>12.3} {:>14.0} {:>14.1}",
                chunk_kb,
                linger_us,
                m.mrecords_per_sec(),
                m.mean_request_latency_us,
                m.consolidation(),
            );
        }
    }
    println!("\nsmall chunks + short linger: lower per-record latency, lower throughput;");
    println!("large chunks + long linger: higher throughput per request, higher latency.");
    Ok(())
}
